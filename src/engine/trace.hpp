// Recorded waveforms: (time, probed values) samples of a transient run, with
// interpolation and comparison utilities for the accuracy experiments.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace wavepipe::engine {

/// Which unknowns a transient run records.  Recording everything is O(steps
/// × unknowns) memory, so big-circuit benches probe a subset.
struct ProbeSet {
  /// Probe addresses, in recording order.  Non-negative entries index the
  /// solution vector x.  Entries <= -2 address a dynamic STATE slot instead
  /// (EncodeState/DecodeState) — the linear-subnetwork reduction pass routes
  /// probes of eliminated interior nodes through the state vector, where the
  /// ReducedSubnet device writes their back-substituted voltages each accept.
  /// kGround (-1) records a constant 0.
  std::vector<int> unknowns;
  std::vector<std::string> names; ///< parallel display names

  static ProbeSet All(int num_unknowns);
  static ProbeSet FirstNodes(int num_nodes, int limit);

  /// State-slot probe encoding (invertible, disjoint from unknowns and
  /// kGround): slot s <-> entry -2 - s.
  static constexpr int EncodeState(int state_slot) { return -2 - state_slot; }
  static constexpr int DecodeState(int encoded) { return -2 - encoded; }
  static constexpr bool IsStateProbe(int entry) { return entry <= -2; }

  std::size_t size() const { return unknowns.size(); }
};

/// Time-ordered samples of the probed unknowns plus the step-size sequence.
class Trace {
 public:
  Trace() = default;
  explicit Trace(ProbeSet probes) : probes_(std::move(probes)) {}

  const ProbeSet& probes() const { return probes_; }

  void Record(double time, std::span<const double> full_solution);

  /// Record() with the accepted point's state vector alongside, so state
  /// probes (ProbeSet::EncodeState) resolve.  Engines pass SolutionPoint::q;
  /// the two-argument overload asserts no state probe is present.
  void Record(double time, std::span<const double> full_solution,
              std::span<const double> states);

  /// Appends a sample of ALREADY-SELECTED probe values (checkpoint restore:
  /// a trace snapshot stores probe values, not full solutions).  The span's
  /// size must equal probes().size().
  void AppendProbeSample(double time, std::span<const double> probe_values);

  /// Pre-reserves sample storage for a run over `span` seconds with minimum
  /// step `hmin`.  span/hmin bounds the accepted-step count but is
  /// astronomically pessimistic (hmin is the abort floor, not the typical
  /// step), so the estimate is capped — enough to absorb the reallocation
  /// churn of long runs without committing gigabytes.  Additive over calls
  /// and safe to skip entirely.
  void ReserveEstimate(double span, double hmin);

  /// Samples the last ReserveEstimate() sized for (0 before any call);
  /// drivers reuse it to reserve their parallel step-record arrays.
  std::size_t reserved_samples() const { return reserved_samples_; }

  std::size_t num_samples() const { return times_.size(); }
  double time(std::size_t i) const { return times_[i]; }
  std::span<const double> times() const { return times_; }

  /// Value of probe `p` at sample `i`.
  double value(std::size_t i, std::size_t p) const {
    return values_[i * probes_.size() + p];
  }

  /// Linear interpolation of probe `p` at time `t` (clamped to the range).
  double Interpolate(double t, std::size_t p) const;

  /// Series (t, v) of one probe, for charts.
  std::vector<std::pair<double, double>> Series(std::size_t p) const;

  /// Max |a − b| over a common probe index, evaluated at the union of both
  /// traces' sample times with linear interpolation.  The accuracy metric of
  /// the paper's waveform-overlay figure.
  static double MaxDeviation(const Trace& a, const Trace& b, std::size_t p);

  /// MaxDeviation over all probes (traces must have equal probe counts).
  static double MaxDeviationAll(const Trace& a, const Trace& b);

 private:
  ProbeSet probes_;
  std::vector<double> times_;
  std::vector<double> values_;  // row-major: sample * probes
  std::size_t reserved_samples_ = 0;
};

}  // namespace wavepipe::engine
