// Recorded waveforms: (time, probed values) samples of a transient run, with
// interpolation and comparison utilities for the accuracy experiments.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace wavepipe::engine {

/// Which unknowns a transient run records.  Recording everything is O(steps
/// × unknowns) memory, so big-circuit benches probe a subset.
struct ProbeSet {
  std::vector<int> unknowns;      ///< unknown indices, in recording order
  std::vector<std::string> names; ///< parallel display names

  static ProbeSet All(int num_unknowns);
  static ProbeSet FirstNodes(int num_nodes, int limit);

  std::size_t size() const { return unknowns.size(); }
};

/// Time-ordered samples of the probed unknowns plus the step-size sequence.
class Trace {
 public:
  Trace() = default;
  explicit Trace(ProbeSet probes) : probes_(std::move(probes)) {}

  const ProbeSet& probes() const { return probes_; }

  void Record(double time, std::span<const double> full_solution);

  /// Appends a sample of ALREADY-SELECTED probe values (checkpoint restore:
  /// a trace snapshot stores probe values, not full solutions).  The span's
  /// size must equal probes().size().
  void AppendProbeSample(double time, std::span<const double> probe_values);

  /// Pre-reserves sample storage for a run over `span` seconds with minimum
  /// step `hmin`.  span/hmin bounds the accepted-step count but is
  /// astronomically pessimistic (hmin is the abort floor, not the typical
  /// step), so the estimate is capped — enough to absorb the reallocation
  /// churn of long runs without committing gigabytes.  Additive over calls
  /// and safe to skip entirely.
  void ReserveEstimate(double span, double hmin);

  /// Samples the last ReserveEstimate() sized for (0 before any call);
  /// drivers reuse it to reserve their parallel step-record arrays.
  std::size_t reserved_samples() const { return reserved_samples_; }

  std::size_t num_samples() const { return times_.size(); }
  double time(std::size_t i) const { return times_[i]; }
  std::span<const double> times() const { return times_; }

  /// Value of probe `p` at sample `i`.
  double value(std::size_t i, std::size_t p) const {
    return values_[i * probes_.size() + p];
  }

  /// Linear interpolation of probe `p` at time `t` (clamped to the range).
  double Interpolate(double t, std::size_t p) const;

  /// Series (t, v) of one probe, for charts.
  std::vector<std::pair<double, double>> Series(std::size_t p) const;

  /// Max |a − b| over a common probe index, evaluated at the union of both
  /// traces' sample times with linear interpolation.  The accuracy metric of
  /// the paper's waveform-overlay figure.
  static double MaxDeviation(const Trace& a, const Trace& b, std::size_t p);

  /// MaxDeviation over all probes (traces must have equal probe counts).
  static double MaxDeviationAll(const Trace& a, const Trace& b);

 private:
  ProbeSet probes_;
  std::vector<double> times_;
  std::vector<double> values_;  // row-major: sample * probes
  std::size_t reserved_samples_ = 0;
};

}  // namespace wavepipe::engine
