// Simulation options shared by DC, transient, and the WavePipe schedulers.
// Field names and defaults follow SPICE .options conventions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace wavepipe::sparse {
class OrderingCache;  // sparse/ordering_cache.hpp
struct BbdPlan;       // sparse/bbd.hpp
}  // namespace wavepipe::sparse

namespace wavepipe::engine {

struct TransientCheckpoint;  // engine/resilience.hpp

/// Durable-run configuration (engine/resilience.hpp): checkpoint cadence,
/// resume source, run budgets, the stall watchdog, and the feature
/// circuit-breakers.  Everything here defaults to "off"/no-op so that a run
/// with no resilience flags is bit-identical to historical behavior.
struct ResilienceOptions {
  // ---- checkpoint/restart ---------------------------------------------------
  /// Base path for durable snapshots (slots `<path>.a` / `<path>.b`,
  /// util/checkpoint.hpp).  Empty disables checkpointing.
  std::string checkpoint_path;
  /// Write a checkpoint every N accepted steps (0 = wall-cadence only).
  std::uint64_t checkpoint_every_steps = 0;
  /// Write a checkpoint every T wall-seconds (0 = step-cadence only).  The
  /// default cadence when --checkpoint is given with neither knob.
  double checkpoint_every_seconds = 15.0;
  /// Deserialized engine state to resume from (owned by the caller; null for
  /// a fresh run).  Engines restore history/trace/stats/step-control from it
  /// and skip the DC operating point.
  const TransientCheckpoint* resume = nullptr;

  // ---- run-budget governor --------------------------------------------------
  /// Hard ceilings checked at accepted-step (serial/fine-grained) or round
  /// (pipeline) boundaries.  0 = unlimited.  Exhaustion writes a final
  /// checkpoint (when enabled) and aborts structurally with an abort_reason
  /// starting with kBudgetExhausted — never a throw, never lost work.
  double max_wall_seconds = 0.0;
  std::uint64_t max_steps = 0;         ///< accepted steps this PROCESS (post-resume)
  std::uint64_t max_newton_total = 0;  ///< cumulative Newton iterations

  // ---- stall watchdog -------------------------------------------------------
  /// Monitor thread sampling per-worker heartbeats (ThreadPool task counters
  /// + per-context Newton beats).  Off by default: a default run spawns no
  /// extra thread.
  bool watchdog = false;
  double watchdog_interval_seconds = 2.0;
  /// Consecutive no-progress sampling intervals before the stall escalates.
  int watchdog_stall_intervals = 3;

  // ---- feature circuit-breakers --------------------------------------------
  /// Per-feature failure EWMAs (chord, bypass, partition, parallel factor,
  /// parallel assembly) that degrade a misbehaving accelerated path to the
  /// bit-identical monolithic serial path, with a half-open re-probe after a
  /// cooldown.  Enabled by default: on a healthy run no breaker ever trips,
  /// and with every feature off there is nothing to degrade — the default
  /// path is untouched.
  bool breakers = true;
  /// Consecutive feature-attributed solve failures that trip a breaker.
  int breaker_trip_threshold = 4;
  /// Accepted steps an open breaker waits before re-probing (doubles on each
  /// re-trip).
  std::uint64_t breaker_cooldown_steps = 64;
};

/// Implicit integration method for transient analysis.
enum class Method {
  kBackwardEuler,  ///< order 1, L-stable; used for the first step and restarts
  kTrapezoidal,    ///< order 2, A-stable; SPICE default
  kGear2,          ///< order 2 BDF, L-stable; preferred for stiff circuits
};

inline const char* MethodName(Method m) {
  switch (m) {
    case Method::kBackwardEuler: return "be";
    case Method::kTrapezoidal: return "trap";
    case Method::kGear2: return "gear2";
  }
  return "?";
}

/// Integration order of a method (the LTE exponent is order + 1).
inline int MethodOrder(Method m) { return m == Method::kBackwardEuler ? 1 : 2; }

/// Rungs of the time-point rescue ladder (engine/rescue.hpp), in escalation
/// order.  Used as indices into the TransientStats rescue counters.
enum class RescueRung {
  kBackwardEuler = 0,  ///< BE restart with a constant predictor
  kDampedNewton = 1,   ///< BE restart + damped Newton updates
  kGshuntRamp = 2,     ///< transient gshunt continuation ramp
};
inline constexpr int kNumRescueRungs = 3;

inline const char* RescueRungName(RescueRung rung) {
  switch (rung) {
    case RescueRung::kBackwardEuler: return "be-restart";
    case RescueRung::kDampedNewton: return "damped-newton";
    case RescueRung::kGshuntRamp: return "gshunt-ramp";
  }
  return "?";
}

/// Time-point rescue ladder configuration.  The ladder only runs after the
/// normal step-shrinking loop has already failed all the way down to hmin —
/// the clean path never touches it (pay-on-failure only).
struct RescueOptions {
  bool enabled = true;
  /// Damped-Newton rung: attempts with update scale damping, damping^2, ...
  int damped_attempts = 2;
  double damping = 0.5;
  /// Gshunt rung: ramp from gshunt_start down one decade per stage for
  /// `gshunt_stages` stages, then a final solve with the shunt removed.
  int gshunt_stages = 4;
  double gshunt_start = 1e-3;
  /// Extra Newton budget while rescuing (multiplies max_newton_iters).
  int max_iters_scale = 2;
};

struct SimOptions {
  // ---- tolerances (SPICE defaults) ---------------------------------------
  double reltol = 1e-3;   ///< relative tolerance on all unknowns
  double vntol = 1e-6;    ///< absolute tolerance on node voltages [V]
  double abstol = 1e-12;  ///< absolute tolerance on branch currents [A]
  double gmin = 1e-12;    ///< minimum junction conductance [S]

  // ---- Newton-Raphson ------------------------------------------------------
  int max_newton_iters = 60;      ///< per time point ("itl4" role)
  int max_dcop_iters = 200;       ///< for the operating point ("itl1")
  int gmin_stepping_steps = 12;   ///< continuation ladder length
  int source_stepping_steps = 20;

  // ---- transient step control ---------------------------------------------
  Method method = Method::kTrapezoidal;
  double trtol = 7.0;         ///< LTE overestimation compensation (SPICE trtol)
  double step_safety = 0.9;   ///< multiplier on the LTE-optimal next step
  double step_growth = 2.0;   ///< serial growth cap gamma: h_next <= gamma*h
  double min_shrink = 0.1;    ///< floor on per-decision step reduction
  double reject_shrink = 0.5; ///< extra factor applied on an LTE rejection
  int newton_fail_shrink = 8; ///< divide h by this on Newton failure
  double hmax = 0.0;          ///< 0 = auto ((tstop - tstart) / 50)
  double hmin_ratio = 1e-9;   ///< hmin = hmin_ratio * (tstop - tstart)
  double first_step_ratio = 1e-3;  ///< h0 = ratio * min(tstep, hmax)

  // ---- robustness -----------------------------------------------------------
  /// Escalation ladder tried when Newton failure shrinks the step to hmin
  /// (the historical hard-abort point).  See engine/rescue.hpp.
  RescueOptions rescue;

  // ---- bookkeeping ----------------------------------------------------------
  int history_depth = 8;  ///< solution points kept for predictors/LTE

  // ---- linear-solver extras -------------------------------------------------
  /// Iterative-refinement steps applied to each converged Newton update
  /// (x += A \ (b - A x)).  0 (default) keeps the historical bit-exact
  /// behavior; 1 is plenty for ill-conditioned MNA systems.
  int newton_refine_steps = 0;

  // ---- domain decomposition -------------------------------------------------
  /// Bordered-block-diagonal solve path: partition the unknowns into this
  /// many pieces (vertex-separator plan from src/partition), factor/solve
  /// the pieces in parallel and couple them through a Schur complement on
  /// the interface.  0 (default) keeps the monolithic LU path bit-identical
  /// to historical behavior; values are clamped to the system dimension.
  int partition_pieces = 0;

  // ---- latency bypass & chord Newton ---------------------------------------
  /// Device latency bypass (SPICE-style): cache each bypassable device's
  /// stamped Jacobian/RHS contributions and replay them while its controlling
  /// voltages stay within the latency tolerance.  Off by default — the
  /// default path stays bit-exact with historical behavior.
  bool device_bypass = false;
  /// User multiplier on the latency comparison tolerance.  The comparison
  /// itself runs at 1% of the solver tolerance pair (reltol, vntol/abstol) —
  /// DeviceBypass::kLatencyScale — times this value; replay at the solver's
  /// own tolerances would wobble accepted solutions at LTE-tolerance scale
  /// and collapse the step size to hmin.  1.0 keeps the measured-safe scale;
  /// smaller values bypass more conservatively.
  double bypass_vtol = 1.0;
  /// Chord Newton: keep the previous LU factor across iterations (and across
  /// time points while a0 is stable), solving the true-residual form
  /// x += LU_old \ (b - J_new x) instead of refactoring every iteration.
  /// The contraction monitor and the iteration budget below force a fresh
  /// refactor whenever the stale factor stops paying.  Off by default.
  bool chord_newton = false;
  /// Force a refactor when a chord iterate's weighted update fails to shrink
  /// below `chord_rate_limit` times the previous one (and is not converged).
  double chord_rate_limit = 0.5;
  /// Chord solves allowed per factor before a refactor is forced.  The
  /// trust gates (exact-factor match or an observed-contraction bound) do
  /// the accuracy policing, so the budget is a staleness backstop, not a
  /// tuning knob: long step-size plateaus legitimately reuse one factor for
  /// hundreds of solves.
  int chord_iter_budget = 500;
  /// Maximum relative drift of the integrator coefficient a0 for reusing a
  /// factor across time points (a0 scales every capacitive companion
  /// conductance, so the drift bounds the chord contraction rate on
  /// capacitive nodes; past ~30% the iteration stops paying for itself).
  double chord_a0_reltol = 0.3;
  /// Cost gate: LU fill ratio (|L|+|U| over |A|) below which chord reuse is
  /// not attempted.  Without fill-in a refactorization costs about as much
  /// as the triangular solve a chord iteration needs anyway, so reuse can
  /// only add iterations (ladders, chains and trees factor fill-free; 2-D
  /// meshes fill 3-5x and profit).  Set to 0 to attempt chord everywhere.
  double chord_fill_ratio = 2.0;

  // ---- durable runs ---------------------------------------------------------
  /// Checkpoint/restart, run budgets, watchdog, circuit-breakers.  All
  /// defaults are no-ops on the clean path (engine/resilience.hpp).
  ResilienceOptions resilience;

  // ---- shared symbolic artifacts (batch analysis) ---------------------------
  /// Shared fill-reducing-ordering cache attached to every SparseLu the run
  /// creates (sparse/ordering_cache.hpp).  The batch runner hands all
  /// variants of one pattern a single cache so the minimum-degree ordering
  /// is computed once; a cache hit returns the identical permutation the
  /// instance would have computed itself, so results stay bit-identical.
  /// Not owned; null (default) keeps the historical private-cache behavior.
  sparse::OrderingCache* ordering_cache = nullptr;
  /// Precomputed BBD partition plan (partition::PartitionPattern) reused
  /// instead of re-partitioning when partition_pieces > 0.  The plan is a
  /// pure function of the sparsity pattern, so sharing one across variants
  /// of a common pattern changes nothing numerically.  Null (default) lets
  /// each run compute its own.
  std::shared_ptr<const sparse::BbdPlan> partition_plan;
};

}  // namespace wavepipe::engine
