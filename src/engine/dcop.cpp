#include "engine/dcop.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/log.hpp"

namespace wavepipe::engine {
namespace {

NewtonInputs DcInputs(const SimOptions& options) {
  NewtonInputs inputs;
  inputs.time = 0.0;
  inputs.a0 = 0.0;
  inputs.transient = false;
  inputs.gmin = options.gmin;
  inputs.gshunt = 0.0;
  inputs.source_scale = 1.0;
  return inputs;
}

}  // namespace

DcopResult SolveDcOperatingPoint(SolveContext& ctx, const SimOptions& options,
                                 std::span<const std::pair<int, double>> nodesets) {
  std::fill(ctx.state_hist.begin(), ctx.state_hist.end(), 0.0);

  // Nodeset pass: force the requested node voltages through a 1-ohm clamp,
  // solve, then fall through to the regular ladder (clamp released) with the
  // clamped solution as the starting point.
  if (!nodesets.empty()) {
    for (const auto& [node, volts] : nodesets) {
      if (node >= 0 && node < static_cast<int>(ctx.x.size())) {
        ctx.x[static_cast<std::size_t>(node)] = volts;
      }
    }
    NewtonInputs inputs = DcInputs(options);
    inputs.nodesets = nodesets;
    inputs.nodeset_g = 1.0;
    const NewtonStats stats =
        SolveNewton(ctx, inputs, options, options.max_dcop_iters);
    if (!stats.converged) {
      WP_DEBUG << "dcop: clamped nodeset pass failed; continuing unclamped";
    }
  }
  const std::vector<double> initial_guess = ctx.x;

  // --- Strategy 1: direct ----------------------------------------------------
  {
    NewtonStats stats = SolveNewton(ctx, DcInputs(options), options, options.max_dcop_iters);
    if (stats.converged) return {stats, "direct"};
    WP_DEBUG << "dcop: direct Newton failed after " << stats.iterations << " iterations";
  }

  // --- Strategy 2: gmin stepping ----------------------------------------------
  {
    ctx.x = initial_guess;
    NewtonInputs inputs = DcInputs(options);
    bool ladder_ok = true;
    // Shunt ladder from 10 mS down to 0, log-spaced.
    double gshunt = 1e-2;
    for (int step = 0; step < options.gmin_stepping_steps && ladder_ok; ++step) {
      inputs.gshunt = gshunt;
      NewtonStats stats = SolveNewton(ctx, inputs, options, options.max_dcop_iters);
      if (!stats.converged) {
        ladder_ok = false;
        break;
      }
      gshunt /= 10.0;
    }
    if (ladder_ok) {
      // Final solve with the shunt fully removed.
      inputs.gshunt = 0.0;
      NewtonStats stats = SolveNewton(ctx, inputs, options, options.max_dcop_iters);
      if (stats.converged) return {stats, "gmin-stepping"};
    }
    WP_DEBUG << "dcop: gmin stepping failed";
  }

  // --- Strategy 3: source stepping ---------------------------------------------
  {
    ctx.x = initial_guess;
    NewtonInputs inputs = DcInputs(options);
    bool ok = true;
    for (int step = 1; step <= options.source_stepping_steps; ++step) {
      inputs.source_scale =
          static_cast<double>(step) / static_cast<double>(options.source_stepping_steps);
      NewtonStats stats = SolveNewton(ctx, inputs, options, options.max_dcop_iters);
      if (!stats.converged) {
        ok = false;
        break;
      }
      if (step == options.source_stepping_steps) return {stats, "source-stepping"};
    }
    (void)ok;
  }

  throw ConvergenceError("DC operating point failed (direct, gmin and source stepping)");
}

SolutionPointPtr MakeDcSolutionPoint(const SolveContext& ctx, double time) {
  auto point = std::make_shared<SolutionPoint>();
  point->time = time;
  point->x = ctx.x;
  point->q = ctx.state_now;
  point->qdot.assign(ctx.state_now.size(), 0.0);
  return point;
}

}  // namespace wavepipe::engine
