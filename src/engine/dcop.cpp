#include "engine/dcop.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace wavepipe::engine {
namespace {

NewtonInputs DcInputs(const SimOptions& options) {
  NewtonInputs inputs;
  inputs.time = 0.0;
  inputs.a0 = 0.0;
  inputs.transient = false;
  inputs.gmin = options.gmin;
  inputs.gshunt = 0.0;
  inputs.source_scale = 1.0;
  return inputs;
}

}  // namespace

DcopResult SolveDcOperatingPoint(SolveContext& ctx, const SimOptions& options,
                                 std::span<const std::pair<int, double>> nodesets) {
  WP_TSPAN("solve", "dc_operating_point");
  std::fill(ctx.state_hist.begin(), ctx.state_hist.end(), 0.0);

  // Nodeset pass: force the requested node voltages through a 1-ohm clamp,
  // solve, then fall through to the regular ladder (clamp released) with the
  // clamped solution as the starting point.
  if (!nodesets.empty()) {
    for (const auto& [node, volts] : nodesets) {
      if (node >= 0 && node < static_cast<int>(ctx.x.size())) {
        ctx.x[static_cast<std::size_t>(node)] = volts;
      }
    }
    NewtonInputs inputs = DcInputs(options);
    inputs.nodesets = nodesets;
    inputs.nodeset_g = 1.0;
    const NewtonStats stats =
        SolveNewton(ctx, inputs, options, options.max_dcop_iters);
    if (!stats.converged) {
      WP_DEBUG << "dcop: clamped nodeset pass failed; continuing unclamped";
    }
  }
  const std::vector<double> initial_guess = ctx.x;
  // Each strategy starts from initial_guess and, on failure, must leave no
  // residue in ctx.x for the next one (a half-stepped continuation iterate
  // is a WORSE starting point than the original guess).  The attempts log
  // records what was tried so the final error is actionable.
  std::string attempts;
  const auto log_attempt = [&attempts](const std::string& entry) {
    if (!attempts.empty()) attempts += ", ";
    attempts += entry;
  };

  // --- Strategy 1: direct ----------------------------------------------------
  {
    NewtonStats stats = SolveNewton(ctx, DcInputs(options), options, options.max_dcop_iters);
    if (stats.converged) return {stats, "direct"};
    WP_DEBUG << "dcop: direct Newton failed after " << stats.iterations << " iterations";
    log_attempt("direct (" + std::to_string(stats.iterations) + " iters)");
  }

  // --- Strategy 2: gmin stepping ----------------------------------------------
  {
    ctx.x = initial_guess;
    NewtonInputs inputs = DcInputs(options);
    bool ladder_ok = true;
    // Shunt ladder from 10 mS down to 0, log-spaced.
    double gshunt = 1e-2;
    int failed_rung = 0;
    int failed_iters = 0;
    for (int step = 0; step < options.gmin_stepping_steps && ladder_ok; ++step) {
      inputs.gshunt = gshunt;
      NewtonStats stats = SolveNewton(ctx, inputs, options, options.max_dcop_iters);
      if (!stats.converged) {
        ladder_ok = false;
        failed_rung = step + 1;
        failed_iters = stats.iterations;
        break;
      }
      gshunt /= 10.0;
    }
    if (ladder_ok) {
      // Final solve with the shunt fully removed.
      inputs.gshunt = 0.0;
      NewtonStats stats = SolveNewton(ctx, inputs, options, options.max_dcop_iters);
      if (stats.converged) return {stats, "gmin-stepping"};
      log_attempt("gmin-stepping (release solve, " + std::to_string(stats.iterations) +
                  " iters)");
    } else {
      log_attempt("gmin-stepping (rung " + std::to_string(failed_rung) + "/" +
                  std::to_string(options.gmin_stepping_steps) + ", " +
                  std::to_string(failed_iters) + " iters)");
    }
    WP_DEBUG << "dcop: gmin stepping failed";
  }

  // --- Strategy 3: source stepping ---------------------------------------------
  {
    ctx.x = initial_guess;
    NewtonInputs inputs = DcInputs(options);
    for (int step = 1; step <= options.source_stepping_steps; ++step) {
      inputs.source_scale =
          static_cast<double>(step) / static_cast<double>(options.source_stepping_steps);
      NewtonStats stats = SolveNewton(ctx, inputs, options, options.max_dcop_iters);
      if (!stats.converged) {
        log_attempt("source-stepping (step " + std::to_string(step) + "/" +
                    std::to_string(options.source_stepping_steps) + ", " +
                    std::to_string(stats.iterations) + " iters)");
        break;
      }
      if (step == options.source_stepping_steps) return {stats, "source-stepping"};
    }
  }

  // Leave the context exactly as the caller handed it over: a failed
  // mid-ladder continuation iterate must not masquerade as a solution.
  ctx.x = initial_guess;
  throw ConvergenceError("DC operating point failed; tried: " + attempts);
}

SolutionPointPtr MakeDcSolutionPoint(const SolveContext& ctx, double time) {
  auto point = std::make_shared<SolutionPoint>();
  point->time = time;
  point->x = ctx.x;
  point->q = ctx.state_now;
  point->qdot.assign(ctx.state_now.size(), 0.0);
  return point;
}

}  // namespace wavepipe::engine
