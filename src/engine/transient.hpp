// Transient analysis: the single-time-point solve primitive (shared with the
// WavePipe schedulers) and the conventional serial driver (the baseline every
// experiment compares against).
#pragma once

#include <vector>

#include "engine/circuit.hpp"
#include "engine/dcop.hpp"
#include "engine/history.hpp"
#include "engine/integrator.hpp"
#include "engine/mna.hpp"
#include "engine/newton.hpp"
#include "engine/options.hpp"
#include "engine/step_control.hpp"
#include "engine/trace.hpp"

namespace wavepipe::engine {

/// Result of solving the circuit at one time point from a history window.
struct StepSolveResult {
  bool converged = false;
  /// Null unless converged.  Mutable here (the WavePipe driver tags backward
  /// points as auxiliary before publishing); converts to SolutionPointPtr
  /// when added to a History.
  std::shared_ptr<SolutionPoint> point;
  NewtonStats newton;
  IntegrationPlan plan;
  std::vector<double> predicted;  ///< predictor at t_new (LTE / FWP checks)
  double solve_seconds = 0.0;     ///< measured wall cost (feeds the ledger)
};

/// Solves the circuit at `t_new` using history `window` (time-ascending,
/// newest last, t_new beyond it).  `restart` forces backward Euler with a
/// constant predictor — used for the first step and after breakpoints, where
/// extrapolating across a waveform kink would poison both the initial guess
/// and the integrator history.
///
/// Pure function of (window, t_new): touches only `ctx`, never shared state,
/// so WavePipe can run several of these concurrently on different contexts.
///
/// `seed_x` (optional) overrides the Newton initial guess — forward
/// pipelining's repair pass hot-starts from the speculative solution this
/// way.  The predictor is still computed for the LTE test.
StepSolveResult SolveTimePoint(SolveContext& ctx, const HistoryWindow& window, double t_new,
                               Method method, bool restart, const SimOptions& options,
                               std::span<const double> seed_x = {});

/// Builds the LTE/step-control parameter block from SimOptions.
StepControlParams MakeStepParams(const SimOptions& options, int num_nodes, int order);

struct TransientSpec {
  double tstart = 0.0;
  double tstop = 0.0;
  double tstep = 0.0;  ///< suggested step scale (SPICE .tran TSTEP role)
  ProbeSet probes;
  bool record_step_details = true;  ///< keep per-step h / iteration records
  /// Nodeset-style initial conditions (.ic): (unknown index, volts) pairs
  /// used as the DC operating point's starting guess.  Steers multi-stable
  /// circuits (latches, ring oscillators) toward the intended state.
  std::vector<std::pair<int, double>> initial_conditions;
};

/// One accepted (or rejected) step, for the step-size figure.
struct StepRecord {
  double time = 0.0;       ///< time point solved
  double h = 0.0;
  int newton_iterations = 0;
  double lte = 0.0;        ///< normalized error estimate
  bool accepted = true;
  bool restart_step = false;
};

struct TransientStats {
  std::size_t steps_accepted = 0;
  std::size_t steps_rejected_lte = 0;
  std::size_t steps_rejected_newton = 0;
  std::uint64_t newton_iterations = 0;
  std::uint64_t lu_full_factors = 0;
  std::uint64_t lu_refactors = 0;
  double wall_seconds = 0.0;
  std::string dcop_strategy;
  // LU level-scheduling telemetry (sparse/lu.hpp), copied from the primary
  // SolveContext at the end of a run so benches and traces stop re-deriving
  // schedules.  Valid whenever the run factored at least once.
  int factor_levels = 0;                      ///< refactor DAG depth
  std::size_t factor_widest_level = 0;        ///< widest refactor level (columns)
  double modeled_refactor_speedup2 = 1.0;     ///< cost model at 2 threads
  double modeled_refactor_speedup4 = 1.0;     ///< cost model at 4 threads
  std::uint64_t lu_parallel_refactors = 0;    ///< level-scheduled refactors run
  std::uint64_t lu_refactor_fallbacks = 0;    ///< pool offered, model chose serial
  std::uint64_t lu_parallel_solves = 0;       ///< level-scheduled solves run

  /// Copies the LU telemetry block from a solver's stats snapshot.
  void AbsorbLuStats(const sparse::SparseLu::Stats& lu) {
    factor_levels = lu.factor_levels;
    factor_widest_level = lu.factor_widest_level;
    modeled_refactor_speedup2 = lu.modeled_refactor_speedup2;
    modeled_refactor_speedup4 = lu.modeled_refactor_speedup4;
    lu_parallel_refactors += lu.parallel_refactor_count;
    lu_refactor_fallbacks += lu.refactor_fallback_count;
    lu_parallel_solves += lu.parallel_solve_count;
  }
};

struct TransientResult {
  Trace trace;
  TransientStats stats;
  std::vector<StepRecord> steps;
  SolutionPointPtr final_point;
};

/// Conventional serial SPICE transient loop: DC operating point, then
/// LTE-controlled variable-step integration with breakpoint handling.
TransientResult RunTransientSerial(const Circuit& circuit, const MnaStructure& structure,
                                   const TransientSpec& spec, const SimOptions& options);

/// Step scheduling limits shared by the serial and WavePipe drivers.
struct StepLimits {
  double hmin = 0.0;
  double hmax = 0.0;
  double h0 = 0.0;  ///< (re)start step size
  static StepLimits FromSpec(const TransientSpec& spec, const SimOptions& options);
};

}  // namespace wavepipe::engine
