// Transient analysis: the single-time-point solve primitive (shared with the
// WavePipe schedulers) and the conventional serial driver (the baseline every
// experiment compares against).
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "engine/circuit.hpp"
#include "engine/dcop.hpp"
#include "engine/history.hpp"
#include "engine/integrator.hpp"
#include "engine/mna.hpp"
#include "engine/newton.hpp"
#include "engine/options.hpp"
#include "engine/resilience_stats.hpp"
#include "engine/step_control.hpp"
#include "engine/trace.hpp"

namespace wavepipe::engine {

/// Result of solving the circuit at one time point from a history window.
struct StepSolveResult {
  bool converged = false;
  /// Null unless converged.  Mutable here (the WavePipe driver tags backward
  /// points as auxiliary before publishing); converts to SolutionPointPtr
  /// when added to a History.
  std::shared_ptr<SolutionPoint> point;
  NewtonStats newton;
  IntegrationPlan plan;
  std::vector<double> predicted;  ///< predictor at t_new (LTE / FWP checks)
  double solve_seconds = 0.0;     ///< measured wall cost (feeds the ledger)
  /// Non-empty when the solve ended in something harder than plain
  /// non-convergence (singular pivot, exception drained from a worker
  /// future).  Carried into abort reasons.
  std::string failure;
};

/// Per-solve parameter overrides used by the rescue ladder: the clean path
/// always passes the defaults, so the regular solve sequence is untouched.
struct SolveOverrides {
  double gshunt = 0.0;       ///< extra node-diagonal shunt (continuation)
  double damping = 1.0;      ///< Newton update damping
  int max_iters_scale = 1;   ///< multiplies options.max_newton_iters
};

/// Solves the circuit at `t_new` using history `window` (time-ascending,
/// newest last, t_new beyond it).  `restart` forces backward Euler with a
/// constant predictor — used for the first step and after breakpoints, where
/// extrapolating across a waveform kink would poison both the initial guess
/// and the integrator history.
///
/// Pure function of (window, t_new): touches only `ctx`, never shared state,
/// so WavePipe can run several of these concurrently on different contexts.
///
/// `seed_x` (optional) overrides the Newton initial guess — forward
/// pipelining's repair pass hot-starts from the speculative solution this
/// way.  The predictor is still computed for the LTE test.
StepSolveResult SolveTimePoint(SolveContext& ctx, const HistoryWindow& window, double t_new,
                               Method method, bool restart, const SimOptions& options,
                               std::span<const double> seed_x = {},
                               const SolveOverrides& overrides = {});

/// Builds the LTE/step-control parameter block from SimOptions.
StepControlParams MakeStepParams(const SimOptions& options, int num_nodes, int order);

/// Re-derives `point`'s state vector (q, then qdot) against `window` at the
/// point's own solution x — one device-evaluation pass, no solve.  Returns
/// the integration plan used.
///
/// Forward pipelining needs this when it accepts a speculative solution
/// DIRECTLY: the speculative solve computed its states against PREDICTED
/// history.  For ordinary devices that is harmless — their charges are
/// functions of the (validated) solution vector.  But a ReducedSubnet's
/// interior voltages and absorbed-capacitor charges depend on the state
/// HISTORY itself, so an unrepaired prediction error would feed state→state
/// without ever crossing the validated x, and the trapezoidal rule amplifies
/// it into ringing.  Re-evaluating against the true window pins every
/// published state to the same inputs a cold solve would have used.
IntegrationPlan RefreshPointStates(SolveContext& ctx, const HistoryWindow& window,
                                   Method method,
                                   const std::shared_ptr<SolutionPoint>& point,
                                   const SimOptions& options);

struct TransientSpec {
  double tstart = 0.0;
  double tstop = 0.0;
  double tstep = 0.0;  ///< suggested step scale (SPICE .tran TSTEP role)
  ProbeSet probes;
  bool record_step_details = true;  ///< keep per-step h / iteration records
  /// Nodeset-style initial conditions (.ic): (unknown index, volts) pairs
  /// used as the DC operating point's starting guess.  Steers multi-stable
  /// circuits (latches, ring oscillators) toward the intended state.
  std::vector<std::pair<int, double>> initial_conditions;
};

/// One accepted (or rejected) step, for the step-size figure.
struct StepRecord {
  double time = 0.0;       ///< time point solved
  double h = 0.0;
  int newton_iterations = 0;
  double lte = 0.0;        ///< normalized error estimate
  bool accepted = true;
  bool restart_step = false;
};

struct TransientStats {
  std::size_t steps_accepted = 0;
  std::size_t steps_rejected_lte = 0;
  std::size_t steps_rejected_newton = 0;
  /// Rescue-ladder telemetry, indexed by RescueRung.  An "attempt" is one
  /// rung engaged (not one Newton solve inside it); a rung that produced the
  /// accepted point also counts in rescues_succeeded.
  std::array<std::uint64_t, kNumRescueRungs> rescues_attempted{};
  std::array<std::uint64_t, kNumRescueRungs> rescues_succeeded{};
  std::uint64_t TotalRescuesAttempted() const {
    std::uint64_t total = 0;
    for (const auto count : rescues_attempted) total += count;
    return total;
  }
  std::uint64_t TotalRescuesSucceeded() const {
    std::uint64_t total = 0;
    for (const auto count : rescues_succeeded) total += count;
    return total;
  }
  std::uint64_t newton_iterations = 0;
  std::uint64_t lu_full_factors = 0;
  std::uint64_t lu_refactors = 0;
  // Latency bypass / chord Newton telemetry (0 unless the features are on).
  std::uint64_t bypassed_evals = 0;    ///< device evals replayed from cache
  std::uint64_t bypass_full_evals = 0; ///< bypassable devices evaluated fully
  std::uint64_t chord_solves = 0;      ///< Newton iterations on a stale factor
  std::uint64_t forced_refactors = 0;  ///< chord safety-net refactorizations
  /// Times the step-floor safety valve shut the bypass off mid-run: accepted
  /// steps pinned at hmin for DeviceBypass::kFloorStreakLimit in a row with
  /// replay active (the replay wobble exceeded the deck's LTE budget).
  std::uint64_t bypass_auto_disables = 0;
  double wall_seconds = 0.0;
  std::string dcop_strategy;
  // LU level-scheduling telemetry (sparse/lu.hpp), copied from the primary
  // SolveContext at the end of a run so benches and traces stop re-deriving
  // schedules.  Valid whenever the run factored at least once.
  int factor_levels = 0;                      ///< refactor DAG depth
  std::size_t factor_widest_level = 0;        ///< widest refactor level (columns)
  double modeled_refactor_speedup2 = 1.0;     ///< cost model at 2 threads
  double modeled_refactor_speedup4 = 1.0;     ///< cost model at 4 threads
  std::uint64_t lu_parallel_refactors = 0;    ///< level-scheduled refactors run
  std::uint64_t lu_refactor_fallbacks = 0;    ///< pool offered, model chose serial
  std::uint64_t lu_parallel_solves = 0;       ///< level-scheduled solves run
  // Domain-decomposition (BBD) telemetry, absorbed from each context's
  // BbdSolver at the end of a run.  All zero when --partition is off, so the
  // exported partition.* counters exist for every engine and stay 0/absent
  // of influence on the monolithic path.
  int partition_pieces = 0;
  std::size_t partition_interface_size = 0;
  double partition_piece_imbalance = 0.0;
  std::uint64_t partition_full_factors = 0;
  std::uint64_t partition_refactors = 0;
  std::uint64_t partition_solves = 0;
  std::uint64_t partition_schur_factors = 0;
  std::size_t partition_schur_nnz = 0;
  double partition_schur_seconds = 0.0;

  /// Registers every field under the `transient.` prefix, the absorbed LU
  /// block under `lu.` (util/telemetry.hpp).  Rescue counters expand to one
  /// counter per rung, named by RescueRungName().
  void ExportCounters(util::telemetry::CounterRegistry& registry) const;

  /// Copies the LU telemetry block from a solver's stats snapshot.
  void AbsorbLuStats(const sparse::SparseLu::Stats& lu) {
    factor_levels = lu.factor_levels;
    factor_widest_level = lu.factor_widest_level;
    modeled_refactor_speedup2 = lu.modeled_refactor_speedup2;
    modeled_refactor_speedup4 = lu.modeled_refactor_speedup4;
    lu_parallel_refactors += lu.parallel_refactor_count;
    lu_refactor_fallbacks += lu.refactor_fallback_count;
    lu_parallel_solves += lu.parallel_solve_count;
  }

  /// Merges the BBD telemetry block from one context's partitioned solver.
  /// Static plan facts (pieces, interface, imbalance, Schur nnz) are shared
  /// by every context, so they overwrite; activity counters accumulate.
  void AbsorbPartitionStats(const sparse::BbdStats& bbd) {
    partition_pieces = bbd.pieces;
    partition_interface_size = bbd.interface_size;
    partition_piece_imbalance = bbd.piece_imbalance;
    partition_schur_nnz = bbd.schur_nnz;
    partition_full_factors += bbd.full_factor_count;
    partition_refactors += bbd.refactor_count;
    partition_solves += bbd.solve_count;
    partition_schur_factors += bbd.schur_factor_count;
    partition_schur_seconds += bbd.schur_seconds;
  }
};

struct TransientResult {
  Trace trace;
  TransientStats stats;
  /// Durable-run telemetry (ckpt./watchdog./resilience. counter groups); all
  /// zero unless SimOptions::resilience engaged something.
  ResilienceStats resilience;
  std::vector<StepRecord> steps;
  SolutionPointPtr final_point;
  /// False when the run aborted before reaching tstop.  The trace, stats,
  /// ledger and final_point still hold everything computed up to
  /// last_good_time — an abort never discards the waveform.
  bool completed = true;
  std::string abort_reason;     ///< empty when completed
  double last_good_time = 0.0;  ///< newest accepted time point
};

/// Conventional serial SPICE transient loop: DC operating point, then
/// LTE-controlled variable-step integration with breakpoint handling.
TransientResult RunTransientSerial(const Circuit& circuit, const MnaStructure& structure,
                                   const TransientSpec& spec, const SimOptions& options);

/// Step scheduling limits shared by the serial and WavePipe drivers.
struct StepLimits {
  double hmin = 0.0;
  double hmax = 0.0;
  double h0 = 0.0;  ///< (re)start step size
  static StepLimits FromSpec(const TransientSpec& spec, const SimOptions& options);
};

/// A candidate step clipped against the breakpoint schedule and stop time.
struct StepClip {
  double t_new = 0.0;
  bool hit_breakpoint = false;
  bool hit_stop = false;
};

/// The ONE clipping rule both the serial engine and the pipeline driver use
/// (they previously disagreed on > vs >= at tstop, which made their step
/// sequences drift apart in the last interval).  Advances `next_breakpoint`
/// past breakpoints already within hmin of t_from, snaps t_new onto a
/// breakpoint within hmin, and clamps at tstop (stop wins over breakpoint).
StepClip ClipStepToSchedule(double t_from, double h, double tstop,
                            std::span<const double> breakpoints,
                            std::size_t& next_breakpoint, double hmin);

/// Shared loop-termination test: the newest accepted time has reached tstop
/// (up to the same relative slack in both drivers).
bool TransientHorizonReached(double newest_time, double tstop);

}  // namespace wavepipe::engine
