// Newton–Raphson nonlinear solver and its per-thread workspace.
//
// SolveContext bundles everything one solver thread mutates: Jacobian
// values, RHS, iterate, dynamic state, limiting memory, and the sparse LU.
// WavePipe gives each worker its own SolveContext; the Circuit and
// MnaStructure stay shared and read-only.
#pragma once

#include <atomic>
#include <span>
#include <vector>

#include "engine/bypass.hpp"
#include "engine/circuit.hpp"
#include "engine/mna.hpp"
#include "engine/options.hpp"
#include "sparse/bbd.hpp"
#include "sparse/lu.hpp"

namespace wavepipe::util {
class ThreadPool;
namespace telemetry {
class CounterRegistry;
}
}  // namespace wavepipe::util

namespace wavepipe::engine {

struct NewtonStats {
  bool converged = false;
  int iterations = 0;
  double final_delta = 0.0;   ///< max weighted update of the last iteration
  int lu_full_factors = 0;
  int lu_refactors = 0;
  /// Chord-Newton iterations that reused a stale LU factor instead of
  /// refactoring (0 unless SimOptions::chord_newton is on).
  int chord_solves = 0;
  /// Refactorizations forced by the chord safety net: degraded contraction
  /// rate, exhausted per-factor iteration budget, or fault injection.
  int forced_refactors = 0;
  /// The iteration aborted on a singular (or injected) pivot failure rather
  /// than plain non-convergence.  Reported instead of letting the
  /// SingularMatrixError unwind: a singular Jacobian at one trial point is a
  /// recoverable event (shrink the step, climb the rescue ladder), not a
  /// reason to discard the waveform computed so far.
  bool singular = false;

  /// Registers every field under the `newton.` prefix (util/telemetry.hpp).
  void ExportCounters(util::telemetry::CounterRegistry& registry) const;
};

struct NewtonInputs;
class SolveContext;

/// How an attached assembler spent its time and what it decided — surfaced
/// through FineGrainedResult / WavePipeResult so benches can report the
/// coloring-vs-reduction split without reaching into parallel internals.
struct AssemblyStats {
  const char* strategy = "serial";  ///< "serial", "reduction", or "colored"
  int colors = 0;                   ///< color phases (0 = not colored)
  std::size_t conflict_edges = 0;   ///< device-conflict graph edges
  int max_degree = 0;               ///< max conflict degree over devices
  std::uint64_t passes = 0;         ///< assembly passes executed
  double zero_seconds = 0.0;        ///< zeroing matrix/RHS (shared or private)
  double stamp_seconds = 0.0;       ///< device evaluation proper
  double merge_seconds = 0.0;       ///< reduction sweep or color barriers

  /// Registers the numeric fields under the `assembly.` prefix; the strategy
  /// string travels in the run-stats header, not the registry.
  void ExportCounters(util::telemetry::CounterRegistry& registry) const;
};

/// Strategy hook for the device-evaluation half of EvalDevices().  A
/// SolveContext with an attached assembler delegates the zero+stamp work to
/// it — this is how the colored conflict-free assembler (src/parallel)
/// drops into the serial Newton loop and into every pipelined WavePipe
/// solve without the engine depending on the parallel layer.
///
/// Contract: Assemble() must leave ctx.matrix / ctx.rhs / ctx.state_now /
/// ctx.limit_b exactly as the serial device loop would (gshunt, nodesets and
/// the limit swap stay with EvalDevices).  Implementations must be safe to
/// call concurrently on DIFFERENT contexts (WavePipe workers share one
/// assembler across their per-slot contexts).
class DeviceAssembler {
 public:
  virtual ~DeviceAssembler() = default;
  virtual void Assemble(SolveContext& ctx, const NewtonInputs& inputs, bool limit_valid,
                        bool first_iteration) = 0;
  virtual AssemblyStats stats() const = 0;
};

/// Per-context chord-Newton bookkeeping: tracks whether ctx.lu currently
/// holds a factor that may legally serve as a chord map, and how much it has
/// been reused.  Lives in the SolveContext so the reuse window naturally
/// spans Newton iterations AND consecutive time points solved on the same
/// context (WavePipe workers each carry their own policy state).
struct FactorReusePolicy {
  /// ctx.lu's factor was computed from a chord-clean Jacobian (full update,
  /// no gshunt/nodeset clamps) and nothing has invalidated it since.
  bool factor_valid = false;
  /// Integrator coefficient a0 the factor was computed at; cross-time-point
  /// reuse is gated on its relative drift (chord_a0_reltol).
  double factor_a0 = 0.0;
  /// Chord solves performed with the current factor (chord_iter_budget).
  int chord_iters = 0;
  /// The factored pattern's fill ratio clears options.chord_fill_ratio:
  /// computed after each factorization; false until the first one.
  bool worthwhile = false;
  /// Adaptive backoff: after a solve in which chord proved unproductive
  /// (degraded contraction or a failed confirmation), chord attempts are
  /// skipped for `backoff_solves` further solves; the window doubles on each
  /// consecutive unproductive attempt and resets on a productive one.
  int backoff_solves = 0;
  int backoff_len = 0;
  /// Bitwise snapshot of the matrix values the factor was computed from.
  /// When the current matrix equals this snapshot, a "chord" solve is in fact
  /// an exact Newton solve and its convergence test can be trusted; when it
  /// differs, a chord-converged iterate must be confirmed by one fresh-factor
  /// iteration before acceptance (a stale LU can squash a large true residual
  /// into an update that passes the weighted-norm test).
  std::vector<double> factor_values;
};

/// Chord-Newton attempt/accept policy shared by engine::SolveNewton and the
/// fine-grained parallel loop (parallel/fine_grained.cpp).  One instance
/// lives for one solve and owns every chord decision — whether an iteration
/// may reuse the factor in ctx.lu (fill-ratio cost gate, cross-solve
/// backoff, a0 drift), whether a passing iterate may be trusted (exact
/// bitwise factor or an observed contraction rate bounding the remaining
/// error), and when the safety net forces a fresh factorization — so the two
/// Newton loops cannot drift apart.  The loops keep ownership of the LU
/// calls themselves; the policy only mutates ctx.factor_reuse.
class ChordPolicy {
 public:
  /// Consumes one backoff credit when the solve enters inside a backoff
  /// window (such a solve never attempts chord steps but still refreshes the
  /// factor snapshot for later reuse).  Chord is structurally sound only for
  /// the plain undamped Newton map: damping rescales the update outside the
  /// solve, and gshunt / nodeset clamps put conductances into the factored
  /// matrix that the chord residual (clean device Jacobian) would not see.
  ChordPolicy(SolveContext& ctx, const NewtonInputs& inputs, const SimOptions& options);

  /// True when this iteration may run as a chord step with the factor
  /// already in ctx.lu.  Within a solve any chord-clean factor qualifies;
  /// entering a new solve (iter 0) additionally requires the integrator
  /// coefficient a0 not to have drifted, since a0 scales every capacitive
  /// companion conductance in the matrix the factor came from.
  bool ShouldUseChord(int iter) const;

  /// Call after device assembly, immediately before ChordStep(): bumps the
  /// reuse counters and records whether the factor is bitwise-exact for the
  /// freshly assembled matrix (then the "chord" solve is an exact Newton
  /// solve and its convergence test can be trusted as-is).
  void BeginChordStep(NewtonStats& stats);

  /// Call before FactorOrRefactor(): invalidates the reuse state so a
  /// thrown SingularMatrixError cannot leave a stale factor marked valid.
  void NoteFactorAttempt();

  /// Call after a successful FactorOrRefactor(): refreshes the reuse
  /// snapshot, the a0 tag, and the fill-ratio cost gate.
  void NoteFreshFactor();

  /// Post-iterate bookkeeping and the acceptance verdict.  `worst` is the
  /// weighted update norm of this iteration, `passed` whether the loop's
  /// convergence test passed.  Runs the degradation safety net (contraction
  /// monitor, per-factor budget, `chord.degraded` fault site) and, for chord
  /// iterates, the trust gate; returns true when a passing iterate may be
  /// accepted.  A false return with passed=true means keep iterating:
  /// either one more chord step to gather rate evidence, or a confirming
  /// fresh-factor pass (chord is off for the rest of the solve).
  bool FinishIteration(double worst, bool passed, NewtonStats& stats);

  /// Call on every exit path with the final convergence status: widens the
  /// cross-solve backoff window after a solve in which chord proved
  /// unproductive, clears it after a productive one.
  void Settle(bool converged);

 private:
  SolveContext* ctx_;
  const SimOptions* options_;
  double a0_ = 0.0;          ///< this solve's integrator coefficient
  bool enabled_ = false;     ///< chord structurally sound for this solve
  bool allowed_ = false;     ///< enabled and not inside a backoff window
  bool chord_off_ = false;   ///< chord proved unproductive at this point
  bool attempted_ = false;   ///< at least one chord step ran this solve
  bool current_is_chord_ = false;  ///< the in-flight iteration is a chord step
  bool exact_factor_ = false;      ///< factor bitwise-exact for current matrix
  bool prev_chord_ = false;        ///< previous iteration was a chord step
  double prev_worst_ = 0.0;        ///< previous iteration's weighted norm
};

/// Bitwise factor-replay seeds: the Jacobian values the linear solver saw at
/// its last FULL factorization and at its last numeric (re)factorization.
/// Refactor() output is a pure function of (symbolic state, input matrix), so
/// replaying Factor(full) then Refactor(numeric) reconstructs the solver's
/// exact state — pivot sequence AND numeric factors, down to the last ULP.
/// This is what lets a checkpoint resume continue bit-identically instead of
/// taking a fresh full factor whose summation order differs from the
/// refactor the uninterrupted run would have done (engine/resilience.hpp).
struct FactorSeeds {
  std::vector<double> full;     ///< values at the last full factorization
  std::vector<double> numeric;  ///< values at the last numeric factorization
  bool valid() const { return !full.empty(); }
};

class SolveContext {
 public:
  SolveContext(const Circuit& circuit, const MnaStructure& structure);

  const Circuit& circuit() const { return *circuit_; }
  const MnaStructure& structure() const { return *structure_; }

  /// Enables the optional device-bypass / chord-Newton acceleration on this
  /// context from the given options.  Call once after construction (and
  /// after attaching any assembler); no-op with the default options.
  void ConfigureAcceleration(const SimOptions& options) {
    bypass.Configure(*circuit_, *structure_, options);
  }

  /// Routes this context's linear solves through the bordered-block-diagonal
  /// solver (sparse/bbd.hpp) built for `plan`.  Drivers compute one plan per
  /// run (partition::PartitionPattern) and hand the same shared plan to every
  /// context, so WavePipe workers don't re-partition.  Never called with the
  /// default options — the monolithic ctx.lu path stays bit-identical.
  void ConfigurePartition(std::shared_ptr<const sparse::BbdPlan> plan) {
    bbd.Configure(std::move(plan), structure_->pattern());
  }

  /// True when linear solves go through the BBD path instead of ctx.lu.
  bool partition_active() const { return bbd.configured() && !partition_disengaged_; }

  /// Circuit-breaker hooks (engine/resilience.hpp): park/resume the BBD path
  /// without discarding the plan.  While disengaged, SolveNewton falls back
  /// to the bit-identical monolithic ctx.lu path; bbd.configured() still
  /// reports true so end-of-run stats absorption keeps its partition block.
  void DisengagePartition() { partition_disengaged_ = true; }
  void ReengagePartition() { partition_disengaged_ = false; }

  /// Captures the current Jacobian values as factor-replay seeds after a
  /// successful factorization (no-op unless record_factor_seeds is set by an
  /// engine with checkpointing engaged — the default path pays nothing).
  void RecordFactorSeeds(FactorSeeds& seeds, bool did_full_factor);

  /// Checkpoint-resume priming: replays the stored seeds through the
  /// monolithic and/or BBD solvers so their state is bit-identical to the
  /// interrupted process at the snapshot boundary.  Leaves ctx.matrix
  /// zeroed; copies the seeds into lu_seeds/bbd_seeds so a resumed run that
  /// checkpoints again before its first factorization stays replayable.
  void PrimeFactorsFromSeeds(const FactorSeeds& lu_from, const FactorSeeds& bbd_from);

  // Workspaces (public by design: the Newton loop, the DC continuation and
  // the integrators all operate on them directly).
  sparse::CscMatrix matrix;        ///< private copy of the pattern
  std::vector<double> rhs;
  std::vector<double> x;           ///< current iterate / final solution
  std::vector<double> x_new;
  std::vector<double> state_now;   ///< charges of the current iterate
  std::vector<double> state_hist;  ///< integrator history term per state
  std::vector<double> limit_a, limit_b;
  sparse::SparseLu lu;
  /// Partitioned (BBD) linear solver; engaged via ConfigurePartition().
  /// When configured, SolveNewton routes factor/solve through it (on
  /// factor_pool) and ctx.lu sits idle; chord Newton disables itself.
  sparse::BbdSolver bbd;
  std::vector<double> lu_work;  ///< per-context Solve() scratch (thread-safe LU)
  std::vector<double> refine_work;  ///< residual scratch for iterative refinement

  /// Optional assembly strategy; null = serial device loop.  Not owned — the
  /// creator (fine-grained evaluator, WavePipe driver) keeps it alive.
  DeviceAssembler* assembler = nullptr;

  /// Optional worker pool for level-scheduled refactorization / triangular
  /// solves inside SolveNewton (RefactorParallel / SolveParallel).  Null =
  /// serial LU kernels.  Not owned; the pool may be shared with the colored
  /// assembler — assembly and factorization never overlap within one Newton
  /// iteration, so sharing is free.  Must be a pool whose workers do not
  /// themselves block on this context (WavePipe gives pipeline workers a
  /// separate intra-solve pool for exactly this reason).
  util::ThreadPool* factor_pool = nullptr;

  /// Device latency bypass (engine/bypass.hpp).  Inactive unless
  /// ConfigureAcceleration() was called with device_bypass set; both the
  /// serial device loop and the colored assembler route through it when
  /// active.  Holds atomics, which is what makes SolveContext non-copyable.
  DeviceBypass bypass;

  /// Chord-Newton factor reuse state (see SolveNewton).
  FactorReusePolicy factor_reuse;

  /// Factor-replay seeds for checkpoint/restart (engine/resilience.hpp).
  /// Maintained by SolveNewton only while record_factor_seeds is set.
  FactorSeeds lu_seeds;
  FactorSeeds bbd_seeds;
  bool record_factor_seeds = false;

  std::uint64_t total_newton_iterations = 0;  ///< lifetime counter

  /// Liveness heartbeat: ticked once per Newton iteration (relaxed; a
  /// one-RMW-per-iteration cost).  The stall watchdog samples it from its
  /// monitor thread, which is why it is atomic while the lifetime counter
  /// above stays a plain integer.
  std::atomic<std::uint64_t> heartbeat{0};

 private:
  bool partition_disengaged_ = false;  ///< breaker parked the BBD path
  const Circuit* circuit_;
  const MnaStructure* structure_;
};

struct NewtonInputs {
  double time = 0.0;         ///< absolute time (ignored for DC)
  double a0 = 0.0;           ///< integrator derivative coefficient (0 = DC)
  bool transient = false;
  double gmin = 1e-12;       ///< junction gmin handed to devices
  double gshunt = 0.0;       ///< extra node-diagonal conductance (gmin stepping)
  double source_scale = 1.0; ///< source-stepping continuation factor
  /// The caller attests the initial guess is already near the solution
  /// (forward pipelining's repair seeds with a validated speculative
  /// solution).  Permits convergence on the very first iteration at the
  /// standard tolerance — the usual "confirming second pass" exists only to
  /// protect against arbitrary starting points.
  bool trusted_seed = false;
  /// Newton update damping: x <- x + damping * dx.  1.0 (default) is the
  /// full undamped update; the rescue ladder's damped rung retries a
  /// divergent time point with fractional steps to tame overshooting device
  /// linearizations.
  double damping = 1.0;

  /// Nodeset clamps: each (node unknown, volts) pair is tied to its target
  /// through a conductance of `nodeset_g` siemens (SPICE's .ic/.nodeset
  /// 1-ohm forcing).  Applied when nodeset_g > 0; the DC ladder runs one
  /// clamped pass, then releases and re-solves.
  std::span<const std::pair<int, double>> nodesets;
  double nodeset_g = 0.0;
};

/// Runs Newton–Raphson from the initial guess already stored in ctx.x.
/// state_hist must be filled by the caller (zero for DC).  On success ctx.x
/// is the solution and ctx.state_now the consistent charges.
NewtonStats SolveNewton(SolveContext& ctx, const NewtonInputs& inputs,
                        const SimOptions& options, int max_iterations);

/// Evaluates all devices at ctx.x into ctx.matrix/ctx.rhs/ctx.state_now
/// (one model pass, no solve).  `limit_valid` selects whether limiting
/// history from the previous pass is honoured.
void EvalDevices(SolveContext& ctx, const NewtonInputs& inputs, bool limit_valid,
                 bool first_iteration);

}  // namespace wavepipe::engine
