#include "engine/circuit.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace wavepipe::engine {

int Circuit::AddNode(const std::string& name) {
  WP_ASSERT(!finalized_);
  const std::string key = util::ToLowerAscii(name);
  if (key == "0" || key == "gnd") return devices::kGround;
  const auto it = node_index_.find(key);
  if (it != node_index_.end()) return it->second;
  const int index = num_nodes_++;
  node_index_.emplace(key, index);
  node_names_.push_back(key);
  return index;
}

int Circuit::NodeIndex(const std::string& name) const {
  const std::string key = util::ToLowerAscii(name);
  if (key == "0" || key == "gnd") return devices::kGround;
  const auto it = node_index_.find(key);
  if (it == node_index_.end()) throw ElaborationError("unknown node '" + name + "'");
  return it->second;
}

bool Circuit::HasNode(const std::string& name) const {
  const std::string key = util::ToLowerAscii(name);
  return key == "0" || key == "gnd" || node_index_.count(key) > 0;
}

const std::string& Circuit::node_name(int index) const {
  WP_ASSERT(index >= 0 && index < num_nodes_);
  return node_names_[static_cast<std::size_t>(index)];
}

void Circuit::Finalize() {
  WP_ASSERT(!finalized_);
  // Devices that look up other devices' branches (K, F, H elements) may be
  // declared before their targets; retry until a pass makes no progress.
  std::vector<std::size_t> pending;
  pending.reserve(devices_.size());
  for (std::size_t i = 0; i < devices_.size(); ++i) pending.push_back(i);
  state_range_.assign(devices_.size(), SlotRange{});
  limit_range_.assign(devices_.size(), SlotRange{});

  while (!pending.empty()) {
    std::vector<std::size_t> deferred;
    std::string last_error;
    for (std::size_t index : pending) {
      devices::Device* device = devices_[index].get();
      const int states_before = num_states_;
      const int limits_before = num_limits_;
      try {
        device->Bind(*this);
      } catch (const ElaborationError& e) {
        // A failed Bind must not have claimed slots (Bind resolves references
        // before allocating), but reset defensively so a retry starts clean.
        num_states_ = states_before;
        num_limits_ = limits_before;
        deferred.push_back(index);
        last_error = e.what();
        continue;
      }
      state_range_[index] = SlotRange{states_before, num_states_};
      limit_range_[index] = SlotRange{limits_before, num_limits_};
      if (device->is_nonlinear()) nonlinear_ = true;
      if (device->states_depend_on_history()) history_coupled_states_ = true;
    }
    if (deferred.size() == pending.size()) {
      throw ElaborationError("unresolvable device reference: " + last_error);
    }
    pending = std::move(deferred);
  }
  finalized_ = true;
}

std::vector<double> Circuit::CollectBreakpoints(double t0, double t1) const {
  std::vector<double> points;
  for (const auto& device : devices_) device->CollectBreakpoints(t0, t1, points);
  std::sort(points.begin(), points.end());
  // Merge breakpoints closer than a relative epsilon; a pair of nearly equal
  // breakpoints would otherwise force a degenerate micro-step between them.
  const double merge_tol = 1e-12 * std::max(1.0, std::abs(t1));
  std::vector<double> unique;
  for (double t : points) {
    if (unique.empty() || t - unique.back() > merge_tol) unique.push_back(t);
  }
  return unique;
}

int Circuit::BranchIndex(const std::string& device_name) const {
  const auto it = branch_of_device_.find(util::ToLowerAscii(device_name));
  if (it == branch_of_device_.end()) {
    throw ElaborationError("device '" + device_name + "' has no branch current");
  }
  return it->second;
}

devices::Device* Circuit::FindDevice(const std::string& name) {
  const std::string lowered = util::ToLowerAscii(name);
  for (const auto& device : devices_) {
    if (device->name() == lowered) return device.get();
  }
  return nullptr;
}

int Circuit::AddBranch(const std::string& owner_name) {
  const int index = num_nodes_ + num_branches_++;
  branch_of_device_[util::ToLowerAscii(owner_name)] = index;
  return index;
}

int Circuit::AddState(const std::string& owner_name) {
  (void)owner_name;
  return num_states_++;
}

int Circuit::AddLimitSlot() { return num_limits_++; }

int Circuit::BranchOf(const std::string& device_name) {
  return static_cast<const Circuit*>(this)->BranchIndex(device_name);
}

}  // namespace wavepipe::engine
