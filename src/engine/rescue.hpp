// Time-point rescue ladder: the escalation path between "Newton failed and
// the step is already at hmin" and "give up".
//
// Historically that condition was an unguarded throw that discarded the
// entire computed waveform.  Production SPICE engines instead escalate
// through progressively more robust (and more expensive) per-point
// continuation strategies before declaring the run dead.  This ladder runs
// them in order, each rung a strict superset of the previous one's
// robustness:
//
//   1. kBackwardEuler — re-solve the point as a backward-Euler restart with
//      a constant predictor and an enlarged Newton budget.  Cures failures
//      caused by a poisoned local polynomial model (trapezoidal ringing,
//      stale history after a sharp device transition).
//   2. kDampedNewton — BE restart plus damped Newton updates (scale d, d^2,
//      ...).  Cures overshooting linearizations of strongly nonlinear
//      devices, where full steps orbit the solution instead of landing.
//   3. kGshuntRamp — transient gshunt continuation: solve with a large
//      node-to-ground shunt (which makes any Jacobian diagonally dominant),
//      then ramp the shunt down one decade per stage re-seeding each stage
//      with the previous solution, and finish with the shunt removed.  The
//      transient analogue of DC gmin stepping, reusing the same
//      NewtonInputs::gshunt plumbing.
//
// The ladder is strictly pay-on-failure: a clean simulation never calls it,
// so it cannot change clean-path step sequences or wall time.  Every rung
// engaged is counted in TransientStats::rescues_attempted / _succeeded, and
// the outcome carries a human-readable log of what was tried for abort
// diagnostics.
#pragma once

#include "engine/transient.hpp"

namespace wavepipe::engine {

struct RescueOutcome {
  bool rescued = false;
  RescueRung rung = RescueRung::kBackwardEuler;  ///< the rung that succeeded
  /// The converged solve when rescued (point, Newton stats, predictor).
  StepSolveResult solve;
  /// Ladder log, e.g. "be-restart (12 iters), damped-newton d=0.5 (9 iters),
  /// gshunt-ramp (converged)".  Feeds abort_reason when nothing worked.
  std::string attempts;
};

/// Runs the ladder for the time point `t_new` from history `window` on
/// `ctx`.  Touches only `ctx` (like SolveTimePoint), so pipelined callers
/// may run it on any idle context.  Counts every engaged rung in `stats`.
RescueOutcome AttemptRescue(SolveContext& ctx, const HistoryWindow& window, double t_new,
                            const SimOptions& options, TransientStats& stats);

}  // namespace wavepipe::engine
