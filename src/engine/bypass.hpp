// Device latency bypass: cache-and-replay of quiescent device evaluations.
//
// Classic SPICE bypass, adapted to the slot-stamped assembly used here.  A
// device opts in by implementing Device::ControllingUnknowns(); for each such
// device the bypass keeps
//   - the controlling unknown values it was last evaluated at,
//   - the Jacobian/RHS *deltas* it stamped (captured by snapshotting its
//     StampFootprint() slots around Eval()),
//   - the state charges, integrator history and limiting memory it produced.
// On a later pass with bitwise-identical per-pass scalars (a0, transient,
// gmin, source_scale), a device whose controlling unknowns and history terms
// all moved less than `bypass_vtol x` the solver tolerances is *replayed*:
// the cached deltas are added and the cached state/limits restored, skipping
// the model evaluation entirely.  The latency comparison runs at 1% of the
// solver tolerances (kLatencyScale) times the user's bypass_vtol: replay at
// the solver's own tolerances lets stale stamps wobble every accepted
// solution by up to one tolerance unit, which the LTE controller reads as
// genuine truncation error and answers by collapsing the step size to hmin
// (measured, not hypothetical).
//
// Safety hinges on one invariant: EVERY assembly pass processes EVERY device
// through Process(), so any pass that cannot replay a device refreshes its
// cache.  Validity flags are therefore never cleared, only overwritten.
//
// Thread safety: Process() may be called concurrently for DIFFERENT devices
// writing a shared value array when the callers' stamp footprints are
// disjoint (exactly the guarantee colored assembly provides).  All per-call
// scratch is per-device-entry; the only shared mutable state is the pair of
// relaxed counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "devices/device.hpp"
#include "engine/circuit.hpp"
#include "engine/mna.hpp"
#include "engine/options.hpp"

namespace wavepipe::engine {

class DeviceBypass {
 public:
  DeviceBypass() = default;

  /// Builds the cache tables.  Activates only when `options.device_bypass`
  /// is set and at least one device opts in; otherwise active() stays false
  /// and the evaluation paths keep their historical bit-exact loops.
  void Configure(const Circuit& circuit, const MnaStructure& structure,
                 const SimOptions& options);

  bool active() const { return active_; }

  /// Permanently deactivates replay for the rest of the run (counters are
  /// preserved).  The transient engines call this through the step-floor
  /// safety valve: no fixed latency tolerance is provably safe for every
  /// circuit — a deck whose LTE budget sits below the replay wobble (tiny
  /// capacitances, steep slopes) collapses the step size to hmin and crawls.
  /// When kFloorStreakLimit consecutive accepted steps sit at the hmin floor
  /// with bypass active, the engine trades the bypass for its step economy.
  void Disable() { active_ = false; }

  /// Consecutive near-floor accepted steps that trigger Disable().  "Near
  /// floor" is h <= kFloorWindow * hmin: the wobble equilibrium hovers a
  /// small factor above hmin (growth off a force-accepted hmin step before
  /// the next rejection), so an exact hmin test keeps missing the streak.
  /// 64 consecutive accepts below 4 * hmin is a pace that needs ~1e8 more
  /// steps to finish — a run already lost without the valve.
  static constexpr int kFloorStreakLimit = 64;
  static constexpr double kFloorWindow = 4.0;

  /// Called once at the top of each assembly pass with the per-pass scalars.
  /// Replay is permitted for this pass only when all four match the previous
  /// pass bitwise (devices may depend on any of them arbitrarily).
  void BeginPass(double a0, bool transient, double gmin, double source_scale);

  /// Evaluates (or replays) devices[device_index] into `eval`.  Returns true
  /// when the cached stamps were replayed and Eval() was skipped.
  bool Process(std::size_t device_index, const devices::Device& device,
               devices::EvalContext& eval);

  /// Drops every cached entry (next pass re-evaluates everything).
  void Invalidate();

  std::uint64_t bypassed_evals() const {
    return bypassed_.load(std::memory_order_relaxed);
  }
  std::uint64_t full_evals() const { return full_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    // Half-open ranges into the flat arrays below; state/limit ranges index
    // the context's own slot arrays directly.
    int ctrl_begin = 0, ctrl_end = 0;
    int jac_begin = 0, jac_end = 0;
    int rhs_begin = 0, rhs_end = 0;
    int state_begin = 0, state_end = 0;
    int limit_begin = 0, limit_end = 0;
    bool bypassable = false;
    bool valid = false;
    // Adaptive capture: a device that rarely replays stops paying the
    // snapshot/delta bookkeeping.  While capturing, every kProbeLen
    // decisions the replay rate is checked; below 1/8 the entry sleeps
    // (plain Eval, cache invalid) for kSleepLen evals, then re-probes.
    bool capture_on = true;
    std::uint16_t window = 0;
    std::uint16_t hits = 0;
  };

  static constexpr std::uint16_t kProbeLen = 128;
  static constexpr std::uint16_t kSleepLen = 512;

  bool Replayable(const Entry& e, const devices::EvalContext& eval) const;
  static void TickWindow(Entry& e);

  /// Baseline latency scale relative to the solver tolerances, multiplied by
  /// the user's bypass_vtol.  Replay introduces stamp errors proportional to
  /// the drift it admits; at the solver's own tolerances (scale 1) those
  /// errors surface at LTE-tolerance scale in the accepted waveform and the
  /// step controller collapses h to hmin — and within a Newton solve they
  /// fabricate convergence (replayed stamps reproduce the previous linear
  /// system exactly, so the update reads as zero).  The measured knee on the
  /// benchmark suite: 1% is transparent (step counts within a few % of the
  /// recompute path), 2% costs ~20% more steps, 5%+ collapses.
  static constexpr double kLatencyScale = 0.01;

  bool active_ = false;
  bool replay_ok_ = false;  // this pass's scalars match the cached ones
  bool have_scalars_ = false;
  double pass_a0_ = 0.0, pass_gmin_ = 0.0, pass_source_scale_ = 1.0;
  bool pass_transient_ = false;

  int num_nodes_ = 0;
  double reltol_ = 0.0, vntol_ = 0.0, abstol_ = 0.0, vtol_scale_ = 1.0;

  std::vector<Entry> entries_;  // one per device

  std::vector<int> ctrl_unknowns_;     // ground-dropped controlling unknowns
  std::vector<double> ctrl_cached_;    // their values at the cached eval
  std::vector<int> jac_slots_;         // deduped, ground-dropped footprint slots
  std::vector<double> jac_cached_;     // stamped delta per slot
  std::vector<double> jac_snap_;       // pre-Eval snapshot scratch
  std::vector<int> rhs_rows_;          // deduped, ground-dropped RHS rows
  std::vector<double> rhs_cached_;
  std::vector<double> rhs_snap_;
  std::vector<double> state_cached_;   // charges written at the cached eval
  std::vector<double> hist_cached_;    // history terms the cached eval read
  std::vector<double> limit_cached_;   // limiting memory it wrote

  std::atomic<std::uint64_t> bypassed_{0};
  std::atomic<std::uint64_t> full_{0};
};

}  // namespace wavepipe::engine
