#include "engine/transient.hpp"

#include <algorithm>
#include <cmath>

#include "engine/rescue.hpp"
#include "engine/resilience.hpp"
#include "partition/partitioner.hpp"

#include "util/error.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace wavepipe::engine {

void TransientStats::ExportCounters(util::telemetry::CounterRegistry& registry) const {
  registry.Count("transient.steps_accepted", steps_accepted);
  registry.Count("transient.steps_rejected_lte", steps_rejected_lte);
  registry.Count("transient.steps_rejected_newton", steps_rejected_newton);
  for (int rung = 0; rung < kNumRescueRungs; ++rung) {
    const char* name = RescueRungName(static_cast<RescueRung>(rung));
    registry.Count(std::string("transient.rescues_attempted.") + name,
                   rescues_attempted[static_cast<std::size_t>(rung)]);
    registry.Count(std::string("transient.rescues_succeeded.") + name,
                   rescues_succeeded[static_cast<std::size_t>(rung)]);
  }
  registry.Count("transient.newton_iterations", newton_iterations);
  registry.Count("transient.bypassed_evals", bypassed_evals);
  registry.Count("transient.bypass_full_evals", bypass_full_evals);
  registry.Count("transient.chord_solves", chord_solves);
  registry.Count("transient.forced_refactors", forced_refactors);
  registry.Count("transient.bypass_auto_disables", bypass_auto_disables);
  registry.Value("transient.wall_seconds", wall_seconds);
  registry.Count("lu.full_factors", lu_full_factors);
  registry.Count("lu.refactors", lu_refactors);
  registry.Count("lu.factor_levels", static_cast<std::uint64_t>(factor_levels));
  registry.Count("lu.factor_widest_level", factor_widest_level);
  registry.Value("lu.modeled_refactor_speedup2", modeled_refactor_speedup2);
  registry.Value("lu.modeled_refactor_speedup4", modeled_refactor_speedup4);
  registry.Count("lu.parallel_refactors", lu_parallel_refactors);
  registry.Count("lu.refactor_fallbacks", lu_refactor_fallbacks);
  registry.Count("lu.parallel_solves", lu_parallel_solves);
  registry.Count("partition.pieces", static_cast<std::uint64_t>(partition_pieces));
  registry.Count("partition.interface_size", partition_interface_size);
  registry.Value("partition.piece_imbalance", partition_piece_imbalance);
  registry.Count("partition.full_factors", partition_full_factors);
  registry.Count("partition.refactors", partition_refactors);
  registry.Count("partition.solves", partition_solves);
  registry.Count("partition.schur_factors", partition_schur_factors);
  registry.Count("partition.schur_nnz", partition_schur_nnz);
  registry.Value("partition.schur_seconds", partition_schur_seconds);
}

StepControlParams MakeStepParams(const SimOptions& options, int num_nodes, int order) {
  StepControlParams params;
  params.reltol = options.reltol;
  params.vntol = options.vntol;
  params.abstol = options.abstol;
  params.trtol = options.trtol;
  params.safety = options.step_safety;
  params.growth_cap = options.step_growth;
  params.min_shrink = options.min_shrink;
  params.reject_shrink = options.reject_shrink;
  params.order = order;
  params.num_nodes = num_nodes;
  params.norm_unknowns = num_nodes;  // LTE on node voltages; see field docs
  return params;
}

StepLimits StepLimits::FromSpec(const TransientSpec& spec, const SimOptions& options) {
  const double span = spec.tstop - spec.tstart;
  WP_ASSERT(span > 0.0);
  StepLimits limits;
  // tstep is the user's print-interval hint, NOT a step cap (SPICE3 uses
  // span/50 as the default maximum step; TMAX/.options maxstep overrides).
  limits.hmax = options.hmax > 0.0 ? options.hmax : span / 50.0;
  limits.hmin = options.hmin_ratio * span;
  limits.h0 = std::max(options.first_step_ratio * limits.hmax, limits.hmin);
  if (spec.tstep > 0.0) limits.h0 = std::min(limits.h0, spec.tstep);
  return limits;
}

StepClip ClipStepToSchedule(double t_from, double h, double tstop,
                            std::span<const double> breakpoints,
                            std::size_t& next_breakpoint, double hmin) {
  StepClip clip{t_from + h, false, false};
  while (next_breakpoint < breakpoints.size() &&
         breakpoints[next_breakpoint] <= t_from + hmin) {
    ++next_breakpoint;  // already passed (or unreachably close)
  }
  if (next_breakpoint < breakpoints.size() &&
      clip.t_new >= breakpoints[next_breakpoint] - hmin) {
    clip.t_new = breakpoints[next_breakpoint];
    clip.hit_breakpoint = true;
  }
  if (clip.t_new >= tstop) {
    clip.t_new = tstop;
    clip.hit_stop = true;
    clip.hit_breakpoint = false;
  }
  return clip;
}

bool TransientHorizonReached(double newest_time, double tstop) {
  return newest_time >= tstop - 1e-15 * std::abs(tstop);
}

StepSolveResult SolveTimePoint(SolveContext& ctx, const HistoryWindow& window, double t_new,
                               Method method, bool restart, const SimOptions& options,
                               std::span<const double> seed_x,
                               const SolveOverrides& overrides) {
  WP_ASSERT(!window.empty());
  WP_ASSERT(t_new > window.back()->time);
  WP_TSPAN("solve", "time_point");
  util::ThreadCpuTimer timer;

  StepSolveResult result;
  const Method effective = restart ? Method::kBackwardEuler : method;
  result.plan = PlanIntegration(effective, t_new, window, ctx.state_hist);

  // Predictor: constant on restarts (no trustworthy local polynomial),
  // otherwise one more point than the method order.
  const int predictor_points = restart ? 1 : result.plan.order + 1;
  result.predicted.resize(ctx.x.size());
  PredictSolution(window, predictor_points, t_new, result.predicted);
  if (seed_x.empty()) {
    ctx.x = result.predicted;
  } else {
    WP_ASSERT(seed_x.size() == ctx.x.size());
    std::copy(seed_x.begin(), seed_x.end(), ctx.x.begin());
  }

  NewtonInputs inputs;
  inputs.time = t_new;
  inputs.a0 = result.plan.a0;
  inputs.transient = true;
  inputs.gmin = options.gmin;
  inputs.source_scale = 1.0;
  inputs.trusted_seed = !seed_x.empty();
  inputs.gshunt = overrides.gshunt;
  inputs.damping = overrides.damping;
  result.newton = SolveNewton(ctx, inputs, options,
                              options.max_newton_iters * std::max(1, overrides.max_iters_scale));
  result.converged = result.newton.converged;
  if (result.newton.singular) result.failure = "singular pivot";

  if (result.converged) {
    auto point = std::make_shared<SolutionPoint>();
    point->time = t_new;
    point->x = ctx.x;
    point->q = ctx.state_now;
    point->qdot.resize(ctx.state_now.size());
    ComputeQdot(result.plan, point->q, ctx.state_hist, point->qdot);
    result.point = std::move(point);
  }
  result.solve_seconds = timer.Seconds();
  return result;
}

IntegrationPlan RefreshPointStates(SolveContext& ctx, const HistoryWindow& window,
                                   Method method,
                                   const std::shared_ptr<SolutionPoint>& point,
                                   const SimOptions& options) {
  WP_ASSERT(point != nullptr);
  const IntegrationPlan plan = PlanIntegration(method, point->time, window, ctx.state_hist);
  ctx.x = point->x;
  NewtonInputs inputs;
  inputs.time = point->time;
  inputs.a0 = plan.a0;
  inputs.transient = true;
  inputs.gmin = options.gmin;
  inputs.source_scale = 1.0;
  EvalDevices(ctx, inputs, /*limit_valid=*/false, /*first_iteration=*/true);
  point->q = ctx.state_now;
  point->qdot.resize(ctx.state_now.size());
  ComputeQdot(plan, point->q, ctx.state_hist, point->qdot);
  return plan;
}

TransientResult RunTransientSerial(const Circuit& circuit, const MnaStructure& structure,
                                   const TransientSpec& spec, const SimOptions& options) {
  WP_ASSERT(spec.tstop > spec.tstart);
  util::telemetry::ScopedLane lane(0, "serial-engine");
  util::WallTimer total_timer;

  TransientResult result;
  result.trace = Trace(spec.probes.size() > 0
                           ? spec.probes
                           : ProbeSet::FirstNodes(circuit.num_nodes(), 16));

  // Durable-run machinery (engine/resilience.hpp).  With the default
  // ResilienceOptions everything below is inert: no files, no extra thread,
  // no behavior change.  `live` is the options block the breakers are
  // allowed to degrade mid-run; it starts as an exact copy.
  const ResilienceOptions& res = options.resilience;
  SimOptions live = options;
  ResilienceStats& rstats = result.resilience;
  CheckpointSink sink(res, rstats);
  const RunBudget run_budget(res);
  StallWatchdog watchdog(res, rstats);
  BreakerBoard breakers(res, rstats);

  SolveContext ctx(circuit, structure);
  ctx.ConfigureAcceleration(options);
  if (options.ordering_cache != nullptr) ctx.lu.set_ordering_cache(options.ordering_cache);
  if (options.partition_pieces > 0) {
    ctx.ConfigurePartition(
        options.partition_plan != nullptr
            ? options.partition_plan
            : partition::PartitionPattern(structure.pattern(), options.partition_pieces));
  }
  watchdog.AddSource(&ctx.heartbeat);
  watchdog.Start();
  ctx.record_factor_seeds = sink.enabled();
  result.last_good_time = spec.tstart;

  // Factor counters spent PRIMING the linear solvers at resume (replaying
  // the checkpointed seeds) are bookkeeping, not simulation work — this
  // baseline keeps them out of the absorbed partition stats so resumed and
  // uninterrupted runs agree on every activity counter.
  sparse::BbdStats bbd_prime_base{};
  const auto net_bbd_stats = [&]() {
    sparse::BbdStats s = ctx.bbd.stats();
    s.full_factor_count -= bbd_prime_base.full_factor_count;
    s.refactor_count -= bbd_prime_base.refactor_count;
    s.solve_count -= bbd_prime_base.solve_count;
    s.schur_factor_count -= bbd_prime_base.schur_factor_count;
    s.schur_seconds -= bbd_prime_base.schur_seconds;
    return s;
  };

  const StepLimits limits = StepLimits::FromSpec(spec, options);
  std::vector<double> breakpoints = circuit.CollectBreakpoints(spec.tstart, spec.tstop);
  std::size_t next_bp = 0;
  History history(options.history_depth);

  double h = limits.h0;
  bool restart = true;  // first step integrates off the DC point
  int steps_since_restart = 0;
  int floor_streak = 0;  // accepted-at-hmin run length (bypass safety valve)
  std::uint64_t process_steps = 0;   // accepted steps THIS process (budget basis)
  std::uint64_t process_newton = 0;  // Newton iterations THIS process

  if (res.resume != nullptr) {
    // Restore the accepted-step boundary the checkpoint captured; the DC
    // operating point is already inside the history, so the loop continues
    // exactly where the checkpointed process would have.
    const TransientCheckpoint& ck = *res.resume;
    ValidateResume(ck, "serial", "", options.partition_pieces,
                   static_cast<std::uint64_t>(ctx.x.size()),
                   result.trace.probes().size(), spec.tstop);
    rstats.ckpt_resumed = 1;
    result.stats = ck.stats;
    result.steps = ck.steps;
    for (const auto& p : ck.history) {
      auto point = std::make_shared<SolutionPoint>();
      point->time = p.time;
      point->x = p.x;
      point->q = p.q;
      point->qdot = p.qdot;
      point->auxiliary = p.auxiliary;
      history.Add(std::move(point));
    }
    for (std::size_t s = 0; s < ck.trace_times.size(); ++s) {
      const std::size_t stride = result.trace.probes().size();
      result.trace.AppendProbeSample(
          ck.trace_times[s],
          std::span<const double>(ck.trace_values).subspan(s * stride, stride));
    }
    result.final_point = history.newest();
    h = ck.h;
    restart = ck.restart;
    steps_since_restart = static_cast<int>(ck.steps_since_restart);
    floor_streak = static_cast<int>(ck.floor_streak);
    next_bp = ck.next_breakpoint;
    ctx.PrimeFactorsFromSeeds(FactorSeeds{ck.lu_seed_full, ck.lu_seed_numeric},
                              FactorSeeds{ck.bbd_seed_full, ck.bbd_seed_numeric});
    if (ctx.bbd.configured()) bbd_prime_base = ctx.bbd.stats();
  } else {
    try {
      const DcopResult dcop = SolveDcOperatingPoint(ctx, options, spec.initial_conditions);
      result.stats.dcop_strategy = dcop.strategy;
    } catch (const Error& error) {
      // No operating point, no waveform to lose — but still a structured
      // result instead of an unwound stack.
      watchdog.Finish();
      result.completed = false;
      result.abort_reason = error.what();
      result.stats.wall_seconds = total_timer.Seconds();
      return result;
    }
    history.Add(MakeDcSolutionPoint(ctx, spec.tstart));
    result.trace.Record(spec.tstart, history.newest()->x, history.newest()->q);
  }

  result.trace.ReserveEstimate(spec.tstop - spec.tstart, limits.hmin);
  if (spec.record_step_details) {
    result.steps.reserve(result.trace.reserved_samples());
  }

  // Serializes the CURRENT accepted-step boundary.  Solver stats absorbed
  // into the snapshot COPY so the running tallies keep accumulating raw.
  const auto snapshot = [&]() -> std::vector<std::uint8_t> {
    TransientCheckpoint ck;
    ck.engine = "serial";
    ck.partition_pieces = options.partition_pieces;
    ck.num_unknowns = static_cast<std::uint64_t>(ctx.x.size());
    ck.num_probes = result.trace.probes().size();
    ck.tstop = spec.tstop;
    ck.h = h;
    ck.restart = restart;
    ck.steps_since_restart = static_cast<std::uint64_t>(steps_since_restart);
    ck.floor_streak = static_cast<std::uint64_t>(floor_streak);
    ck.next_breakpoint = next_bp;
    for (const auto& sp : history.Window(history.size())) {
      CheckpointPoint p;
      p.time = sp->time;
      p.x = sp->x;
      p.q = sp->q;
      p.qdot = sp->qdot;
      p.auxiliary = sp->auxiliary;
      ck.history.push_back(std::move(p));
    }
    ck.stats = result.stats;
    ck.stats.AbsorbLuStats(ctx.lu.stats());
    if (ctx.bbd.configured()) ck.stats.AbsorbPartitionStats(net_bbd_stats());
    ck.stats.bypassed_evals += ctx.bypass.bypassed_evals();
    ck.stats.bypass_full_evals += ctx.bypass.full_evals();
    ck.stats.wall_seconds = total_timer.Seconds();
    ck.lu_seed_full = ctx.lu_seeds.full;
    ck.lu_seed_numeric = ctx.lu_seeds.numeric;
    ck.bbd_seed_full = ctx.bbd_seeds.full;
    ck.bbd_seed_numeric = ctx.bbd_seeds.numeric;
    ck.steps = result.steps;
    ck.trace_times.assign(result.trace.times().begin(), result.trace.times().end());
    const std::size_t stride = result.trace.probes().size();
    ck.trace_values.reserve(result.trace.num_samples() * stride);
    for (std::size_t s = 0; s < result.trace.num_samples(); ++s) {
      for (std::size_t p = 0; p < stride; ++p) {
        ck.trace_values.push_back(result.trace.value(s, p));
      }
    }
    return SerializeCheckpoint(ck);
  };

  // Accepted-step boundary hook: breaker cooldowns, checkpoint cadence, the
  // budget governor, and watchdog escalation.  True = stop the run now.
  const auto accepted_boundary = [&]() -> bool {
    ++process_steps;
    if (breakers.enabled()) {
      const std::uint64_t reprobe = breakers.OnAcceptedStep();
      if (reprobe & FeatureBit(Feature::kChord)) live.chord_newton = options.chord_newton;
      if (reprobe & FeatureBit(Feature::kPartition)) ctx.ReengagePartition();
      // No bypass re-probe: DeviceBypass::Disable is terminal, matching the
      // step-floor safety valve's one-way semantics.
    }
    sink.MaybeWrite(process_steps, snapshot);
    if (watchdog.ShouldAbort()) {
      ++rstats.watchdog_escalations;
      result.completed = false;
      result.abort_reason = watchdog.AbortReason();
      return true;
    }
    const std::string budget_reason =
        run_budget.Exceeded(process_steps, process_newton, total_timer.Seconds());
    if (!budget_reason.empty()) {
      rstats.budget_exhausted = 1;
      result.completed = false;
      result.abort_reason = budget_reason;
      return true;
    }
    return false;
  };

  while (!TransientHorizonReached(history.newest_time(), spec.tstop)) {
    const double t_now = history.newest_time();

    // Clip the step to the next breakpoint / stop time (shared rule with the
    // pipeline driver — the two step sequences must stay identical).
    h = std::clamp(h, limits.hmin, limits.hmax);
    const StepClip clip =
        ClipStepToSchedule(t_now, h, spec.tstop, breakpoints, next_bp, limits.hmin);
    const double t_new = clip.t_new;
    const bool hit_breakpoint = clip.hit_breakpoint;

    const HistoryWindow window = history.Window(4);
    StepSolveResult solve;
    try {
      solve = SolveTimePoint(ctx, window, t_new, live.method, restart, live);
    } catch (const Error& error) {
      // Recoverable engine errors (injected or genuine) demote to a failed
      // solve: the shrink/rescue machinery below owns what happens next.
      solve.converged = false;
      solve.failure = error.what();
    }
    if (breakers.enabled()) {
      std::uint64_t mask = 0;
      if (live.chord_newton) mask |= FeatureBit(Feature::kChord);
      if (ctx.bypass.active()) mask |= FeatureBit(Feature::kBypass);
      if (ctx.partition_active()) mask |= FeatureBit(Feature::kPartition);
      const std::uint64_t tripped =
          breakers.OnSolveOutcome(mask, solve.converged, solve.solve_seconds);
      if (tripped & FeatureBit(Feature::kChord)) live.chord_newton = false;
      if (tripped & FeatureBit(Feature::kBypass)) ctx.bypass.Disable();
      if (tripped & FeatureBit(Feature::kPartition)) ctx.DisengagePartition();
    }
    process_newton += static_cast<std::uint64_t>(solve.newton.iterations);
    result.stats.newton_iterations += static_cast<std::uint64_t>(solve.newton.iterations);
    result.stats.lu_full_factors += static_cast<std::uint64_t>(solve.newton.lu_full_factors);
    result.stats.lu_refactors += static_cast<std::uint64_t>(solve.newton.lu_refactors);
    result.stats.chord_solves += static_cast<std::uint64_t>(solve.newton.chord_solves);
    result.stats.forced_refactors += static_cast<std::uint64_t>(solve.newton.forced_refactors);

    if (!solve.converged) {
      WP_TINSTANT("lte", "newton_reject");
      result.stats.steps_rejected_newton += 1;
      if (spec.record_step_details) {
        result.steps.push_back({t_new, t_new - t_now, solve.newton.iterations, 0.0,
                                /*accepted=*/false, restart});
      }
      h = (t_new - t_now) / options.newton_fail_shrink;
      if (h < limits.hmin) {
        // Step shrinking is out of road: climb the rescue ladder for one
        // minimal step before giving up.
        const double t_rescue = std::min(t_now + limits.hmin, spec.tstop);
        RescueOutcome rescue =
            AttemptRescue(ctx, window, t_rescue, live, result.stats);
        if (rescue.rescued) {
          history.Add(rescue.solve.point);
          result.trace.Record(t_rescue, rescue.solve.point->x, rescue.solve.point->q);
          result.stats.steps_accepted += 1;
          result.final_point = rescue.solve.point;
          if (spec.record_step_details) {
            result.steps.push_back({t_rescue, t_rescue - t_now,
                                    rescue.solve.newton.iterations, 0.0,
                                    /*accepted=*/true, /*restart_step=*/true});
          }
          // The rescued point is a BE restart; rebuild the local history
          // from it exactly as after a breakpoint.
          restart = true;
          steps_since_restart = 0;
          h = limits.h0;
          // Rescued points advance by hmin by construction — they feed the
          // bypass step-floor valve just like force-accepted hmin steps.
          if (ctx.bypass.active() &&
              ++floor_streak >= DeviceBypass::kFloorStreakLimit) {
            ctx.bypass.Disable();
            result.stats.bypass_auto_disables += 1;
          }
          if (accepted_boundary()) break;
          continue;
        }
        result.completed = false;
        result.abort_reason =
            "transient: Newton failure with step at hmin, t = " +
            std::to_string(t_now) +
            (solve.failure.empty() ? "" : " (" + solve.failure + ")") +
            "; rescue ladder exhausted: " + rescue.attempts;
        break;
      }
      continue;
    }

    // LTE acceptance test.  Skipped while the local polynomial model is not
    // yet trustworthy (restart step and the one following it).
    const bool lte_active = !restart && steps_since_restart >= 1 && window.size() >= 2;
    const StepControlParams params =
        MakeStepParams(live, circuit.num_nodes(), solve.plan.order);
    const StepAssessment assess = [&] {
      WP_TSPAN("lte", "assess_step");
      return AssessStep(solve.point->x, solve.predicted, t_new - t_now, lte_active,
                        params);
    }();
    if (spec.record_step_details) {
      result.steps.push_back({t_new, t_new - t_now, solve.newton.iterations, assess.error,
                              assess.accept, restart});
    }

    // The 1e-6 slack makes the force-accept-at-hmin comparison robust to the
    // rounding of (t_now + hmin) - t_now.
    if (!assess.accept && (t_new - t_now) > limits.hmin * (1.0 + 1e-6)) {
      WP_TINSTANT("lte", "lte_reject");
      result.stats.steps_rejected_lte += 1;
      h = std::max(assess.h_next, limits.hmin);
      continue;
    }

    // Accept.
    history.Add(solve.point);
    result.trace.Record(t_new, solve.point->x, solve.point->q);
    result.stats.steps_accepted += 1;
    result.final_point = solve.point;
    ++steps_since_restart;
    restart = false;

    // Bypass step-floor safety valve: a deck whose LTE budget sits below the
    // replay wobble pins every accepted step at hmin and the run crawls.  A
    // sustained floor streak with replay active trades the bypass for the
    // step economy (see DeviceBypass::Disable).
    if (ctx.bypass.active()) {
      if (t_new - t_now <= limits.hmin * DeviceBypass::kFloorWindow) {
        if (++floor_streak >= DeviceBypass::kFloorStreakLimit) {
          ctx.bypass.Disable();
          result.stats.bypass_auto_disables += 1;
        }
      } else {
        floor_streak = 0;
      }
    }

    if (hit_breakpoint) {
      ++next_bp;
      restart = true;
      steps_since_restart = 0;
      h = limits.h0;
    } else {
      h = std::max(assess.h_next, limits.hmin);
    }

    if (accepted_boundary()) break;
  }

  watchdog.Finish();
  // One final snapshot on EVERY exit (completion, budget, watchdog, rescue
  // exhaustion): the newest accepted state is always resumable.
  sink.WriteFinal(snapshot);
  result.last_good_time = history.newest_time();
  result.stats.wall_seconds = total_timer.Seconds();
  result.stats.AbsorbLuStats(ctx.lu.stats());
  if (ctx.bbd.configured()) result.stats.AbsorbPartitionStats(net_bbd_stats());
  result.stats.bypassed_evals += ctx.bypass.bypassed_evals();
  result.stats.bypass_full_evals += ctx.bypass.full_evals();
  return result;
}

}  // namespace wavepipe::engine
