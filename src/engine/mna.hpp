// MNA structure: the shared, immutable sparsity pattern of the Jacobian plus
// the slot table that lets devices write matrix values without searching.
//
// Built once per circuit.  Each solver thread then owns a SolveContext with a
// private copy of the value array (same pattern), so concurrent WavePipe
// solves never share mutable matrix state.
#pragma once

#include <vector>

#include "devices/context.hpp"
#include "sparse/csc.hpp"

namespace wavepipe::engine {

class Circuit;

class MnaStructure {
 public:
  /// Runs the DeclarePattern phase over the circuit (twice: collect, then
  /// resolve to CSC value indices — devices keep the ids of the second pass).
  explicit MnaStructure(const Circuit& circuit);

  /// Pattern matrix with all values zero; SolveContexts copy it.
  const sparse::CscMatrix& pattern() const { return pattern_; }

  int dimension() const { return dimension_; }
  std::size_t nnz() const { return pattern_.num_nonzeros(); }

  /// CSC value index of diagonal (i, i) for each node unknown: where gmin
  /// stepping adds its continuation conductance.  Always present (the
  /// structure declares every node diagonal).
  const std::vector<int>& node_diag_slots() const { return node_diag_slots_; }

 private:
  int dimension_ = 0;
  sparse::CscMatrix pattern_;
  std::vector<int> node_diag_slots_;
};

}  // namespace wavepipe::engine
