// Circuit: the elaborated device list plus the unknown/state bookkeeping.
//
// Build one either through the netlist front end or directly with the C++
// builder API (see examples/quickstart.cpp), then call Finalize() once.
// After Finalize() the circuit is immutable and may be shared read-only by
// any number of solver threads.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "devices/device.hpp"
#include "util/error.hpp"

namespace wavepipe::engine {

class Circuit final : private devices::Binder {
 public:
  Circuit() = default;

  // ---- construction ---------------------------------------------------------
  /// Returns the unknown index for a named node, creating it on first use.
  /// "0" and "gnd" (any case) map to devices::kGround.
  int AddNode(const std::string& name);

  /// Index of an existing node; throws ElaborationError if unknown.
  int NodeIndex(const std::string& name) const;
  bool HasNode(const std::string& name) const;

  /// Adds a device; the circuit takes ownership.  Returns a raw observer
  /// pointer typed as passed (convenient for the builder API).
  template <typename DeviceT>
  DeviceT* Add(std::unique_ptr<DeviceT> device) {
    WP_ASSERT(!finalized_);
    DeviceT* raw = device.get();
    devices_.push_back(std::move(device));
    return raw;
  }

  /// Convenience: constructs DeviceT in place.
  template <typename DeviceT, typename... Args>
  DeviceT* Emplace(Args&&... args) {
    return Add(std::make_unique<DeviceT>(std::forward<Args>(args)...));
  }

  /// Runs the Bind phase over all devices, fixing unknown/state counts.
  /// Must be called exactly once, after the last Add().
  void Finalize();
  bool finalized() const { return finalized_; }

  /// Surrenders the device list (the circuit becomes an empty husk).  Used by
  /// the linear-subnetwork reduction pass, which rebuilds a fresh circuit
  /// over the surviving node set and re-Adds (remapped) survivors to it.
  /// Only valid on a finalized circuit that is not shared with any solver.
  std::vector<std::unique_ptr<devices::Device>> TakeDevices() {
    WP_ASSERT(finalized_);
    return std::move(devices_);
  }

  // ---- post-Finalize queries --------------------------------------------------
  int num_nodes() const { return num_nodes_; }
  int num_branches() const { return num_branches_; }
  int num_unknowns() const { return num_nodes_ + num_branches_; }
  int num_states() const { return num_states_; }
  int num_limit_slots() const { return num_limits_; }
  std::size_t num_devices() const { return devices_.size(); }
  bool is_nonlinear() const { return nonlinear_; }
  /// Any device with history-coupled states (devices/device.hpp) — tells the
  /// WavePipe validator whether a direct-accept needs a full state refresh.
  bool has_history_coupled_states() const { return history_coupled_states_; }

  const std::vector<std::unique_ptr<devices::Device>>& devices() const { return devices_; }

  /// Half-open range of slot indices claimed by one device during Bind().
  struct SlotRange {
    int begin = 0, end = 0;
    int size() const { return end - begin; }
  };

  /// State slots claimed by devices()[i] (valid after Finalize()).  Slot
  /// ownership is exclusive per device, so replaying a device's cached
  /// contribution may restore exactly this range.
  SlotRange device_state_range(std::size_t i) const { return state_range_[i]; }
  /// Limiting slots claimed by devices()[i] (valid after Finalize()).
  SlotRange device_limit_range(std::size_t i) const { return limit_range_[i]; }

  const std::string& node_name(int index) const;
  const std::map<std::string, int>& node_map() const { return node_index_; }

  /// Sorted, deduplicated breakpoint times in (t0, t1] over all devices.
  std::vector<double> CollectBreakpoints(double t0, double t1) const;

  /// Unknown index of a device's branch current; throws if it has none.
  int BranchIndex(const std::string& device_name) const;

  /// Mutable device lookup by instance name (nullptr when absent).  Only
  /// valid while no solver shares the circuit — the DC-sweep analysis verb
  /// retunes a source's value between (sequential) operating-point solves.
  devices::Device* FindDevice(const std::string& name);

 private:
  // devices::Binder implementation (used only inside Finalize()).
  int AddBranch(const std::string& owner_name) override;
  int AddState(const std::string& owner_name) override;
  int AddLimitSlot() override;
  int BranchOf(const std::string& device_name) override;

  bool finalized_ = false;
  bool nonlinear_ = false;
  bool history_coupled_states_ = false;
  int num_nodes_ = 0;
  int num_branches_ = 0;  // assigned indices num_nodes_ .. num_nodes_+num_branches_-1
  int num_states_ = 0;
  int num_limits_ = 0;

  std::vector<std::unique_ptr<devices::Device>> devices_;
  std::vector<SlotRange> state_range_;  // by device index, filled in Finalize()
  std::vector<SlotRange> limit_range_;
  std::map<std::string, int> node_index_;
  std::vector<std::string> node_names_;            // by node index
  std::map<std::string, int> branch_of_device_;    // device name -> unknown index
};

}  // namespace wavepipe::engine
