#include "engine/resilience.hpp"

#include <chrono>

#include "util/checkpoint.hpp"
#include "util/fault.hpp"
#include "util/telemetry.hpp"

namespace wavepipe::engine {
namespace {

using util::ByteReader;
using util::ByteWriter;
using util::CheckpointError;

/// EWMA smoothing for the breaker diagnostics (same spirit as the driver's
/// iteration-cost EMAs).
constexpr double kBreakerEma = 0.1;

void WriteStats(ByteWriter& w, const TransientStats& s) {
  w.U64(s.steps_accepted);
  w.U64(s.steps_rejected_lte);
  w.U64(s.steps_rejected_newton);
  for (const auto v : s.rescues_attempted) w.U64(v);
  for (const auto v : s.rescues_succeeded) w.U64(v);
  w.U64(s.newton_iterations);
  w.U64(s.lu_full_factors);
  w.U64(s.lu_refactors);
  w.U64(s.bypassed_evals);
  w.U64(s.bypass_full_evals);
  w.U64(s.chord_solves);
  w.U64(s.forced_refactors);
  w.U64(s.bypass_auto_disables);
  w.F64(s.wall_seconds);
  w.Str(s.dcop_strategy);
  w.I64(s.factor_levels);
  w.U64(s.factor_widest_level);
  w.F64(s.modeled_refactor_speedup2);
  w.F64(s.modeled_refactor_speedup4);
  w.U64(s.lu_parallel_refactors);
  w.U64(s.lu_refactor_fallbacks);
  w.U64(s.lu_parallel_solves);
  w.I64(s.partition_pieces);
  w.U64(s.partition_interface_size);
  w.F64(s.partition_piece_imbalance);
  w.U64(s.partition_full_factors);
  w.U64(s.partition_refactors);
  w.U64(s.partition_solves);
  w.U64(s.partition_schur_factors);
  w.U64(s.partition_schur_nnz);
  w.F64(s.partition_schur_seconds);
}

TransientStats ReadStats(ByteReader& r) {
  TransientStats s;
  s.steps_accepted = r.U64();
  s.steps_rejected_lte = r.U64();
  s.steps_rejected_newton = r.U64();
  for (auto& v : s.rescues_attempted) v = r.U64();
  for (auto& v : s.rescues_succeeded) v = r.U64();
  s.newton_iterations = r.U64();
  s.lu_full_factors = r.U64();
  s.lu_refactors = r.U64();
  s.bypassed_evals = r.U64();
  s.bypass_full_evals = r.U64();
  s.chord_solves = r.U64();
  s.forced_refactors = r.U64();
  s.bypass_auto_disables = r.U64();
  s.wall_seconds = r.F64();
  s.dcop_strategy = r.Str();
  s.factor_levels = static_cast<int>(r.I64());
  s.factor_widest_level = r.U64();
  s.modeled_refactor_speedup2 = r.F64();
  s.modeled_refactor_speedup4 = r.F64();
  s.lu_parallel_refactors = r.U64();
  s.lu_refactor_fallbacks = r.U64();
  s.lu_parallel_solves = r.U64();
  s.partition_pieces = static_cast<int>(r.I64());
  s.partition_interface_size = r.U64();
  s.partition_piece_imbalance = r.F64();
  s.partition_full_factors = r.U64();
  s.partition_refactors = r.U64();
  s.partition_solves = r.U64();
  s.partition_schur_factors = r.U64();
  s.partition_schur_nnz = r.U64();
  s.partition_schur_seconds = r.F64();
  return s;
}

}  // namespace

const char* FeatureName(Feature feature) {
  switch (feature) {
    case Feature::kChord: return "chord";
    case Feature::kBypass: return "bypass";
    case Feature::kPartition: return "partition";
    case Feature::kParallelFactor: return "parallel_factor";
    case Feature::kParallelAssembly: return "parallel_assembly";
  }
  return "?";
}

void ResilienceStats::ExportCounters(util::telemetry::CounterRegistry& registry) const {
  registry.Count("ckpt.writes", ckpt_writes);
  registry.Count("ckpt.write_failures", ckpt_write_failures);
  registry.Count("ckpt.bytes_last", ckpt_bytes_last);
  registry.Count("ckpt.generation", ckpt_generation);
  registry.Count("ckpt.resumed", ckpt_resumed);
  registry.Count("watchdog.stalls", watchdog_stalls);
  registry.Count("watchdog.escalations", watchdog_escalations);
  registry.Count("resilience.breaker_trips", breaker_trips);
  registry.Count("resilience.breaker_retrips", breaker_retrips);
  registry.Count("resilience.breaker_reprobes", breaker_reprobes);
  for (int f = 0; f < kNumFeatures; ++f) {
    registry.Count(std::string("resilience.trips.") +
                       FeatureName(static_cast<Feature>(f)),
                   feature_trips[static_cast<std::size_t>(f)]);
  }
  registry.Count("resilience.budget_exhausted", budget_exhausted);
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> SerializeCheckpoint(const TransientCheckpoint& ckpt) {
  ByteWriter w;
  w.Str(ckpt.engine);
  w.Str(ckpt.scheme);
  w.I64(ckpt.partition_pieces);
  w.U64(ckpt.num_unknowns);
  w.U64(ckpt.num_probes);
  w.F64(ckpt.tstop);

  w.F64(ckpt.h);
  w.Bool(ckpt.restart);
  w.U64(ckpt.steps_since_restart);
  w.U64(ckpt.floor_streak);
  w.U64(ckpt.next_breakpoint);

  w.F64(ckpt.last_leading_time);
  w.U64(ckpt.bwp_cooldown);
  w.U64(ckpt.consecutive_failures);
  w.U64(ckpt.quarantine_rounds_left);
  w.F64(ckpt.last_growth_factor);
  w.F64(ckpt.avg_lead_iters);
  w.F64(ckpt.avg_repair_iters);
  w.U64(ckpt.repair_samples);
  w.U64(ckpt.sched_u64.size());
  for (const auto v : ckpt.sched_u64) w.U64(v);
  w.DoubleVec(ckpt.sched_f64);
  w.U64(ckpt.ledger.size());
  for (const auto& rec : ckpt.ledger) {
    w.I64(rec.id);
    w.U8(rec.kind);
    w.F64(rec.time_point);
    w.F64(rec.seconds);
    w.I64(rec.newton_iterations);
    w.Bool(rec.useful);
    w.U64(rec.deps.size());
    for (const auto dep : rec.deps) w.I64(dep);
  }

  w.U64(ckpt.history.size());
  for (const auto& point : ckpt.history) {
    w.F64(point.time);
    w.DoubleVec(point.x);
    w.DoubleVec(point.q);
    w.DoubleVec(point.qdot);
    w.Bool(point.auxiliary);
    w.I64(point.ledger_id);
  }

  WriteStats(w, ckpt.stats);

  w.U64(ckpt.steps.size());
  for (const auto& step : ckpt.steps) {
    w.F64(step.time);
    w.F64(step.h);
    w.I64(step.newton_iterations);
    w.F64(step.lte);
    w.Bool(step.accepted);
    w.Bool(step.restart_step);
  }

  w.DoubleVec(ckpt.trace_times);
  w.DoubleVec(ckpt.trace_values);

  w.DoubleVec(ckpt.lu_seed_full);
  w.DoubleVec(ckpt.lu_seed_numeric);
  w.DoubleVec(ckpt.bbd_seed_full);
  w.DoubleVec(ckpt.bbd_seed_numeric);
  w.U64(ckpt.context_seeds.size());
  for (const auto& seeds : ckpt.context_seeds) {
    w.DoubleVec(seeds.lu_full);
    w.DoubleVec(seeds.lu_numeric);
    w.DoubleVec(seeds.bbd_full);
    w.DoubleVec(seeds.bbd_numeric);
  }
  return w.Take();
}

TransientCheckpoint DeserializeCheckpoint(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  TransientCheckpoint ckpt;
  ckpt.engine = r.Str();
  ckpt.scheme = r.Str();
  ckpt.partition_pieces = r.I64();
  ckpt.num_unknowns = r.U64();
  ckpt.num_probes = r.U64();
  ckpt.tstop = r.F64();

  ckpt.h = r.F64();
  ckpt.restart = r.Bool();
  ckpt.steps_since_restart = r.U64();
  ckpt.floor_streak = r.U64();
  ckpt.next_breakpoint = r.U64();

  ckpt.last_leading_time = r.F64();
  ckpt.bwp_cooldown = r.U64();
  ckpt.consecutive_failures = r.U64();
  ckpt.quarantine_rounds_left = r.U64();
  ckpt.last_growth_factor = r.F64();
  ckpt.avg_lead_iters = r.F64();
  ckpt.avg_repair_iters = r.F64();
  ckpt.repair_samples = r.U64();
  const std::uint64_t sched_n = r.U64();
  ckpt.sched_u64.reserve(sched_n);
  for (std::uint64_t i = 0; i < sched_n; ++i) ckpt.sched_u64.push_back(r.U64());
  ckpt.sched_f64 = r.DoubleVec();
  const std::uint64_t ledger_n = r.U64();
  ckpt.ledger.reserve(ledger_n);
  for (std::uint64_t i = 0; i < ledger_n; ++i) {
    CheckpointLedgerRecord rec;
    rec.id = r.I64();
    rec.kind = r.U8();
    rec.time_point = r.F64();
    rec.seconds = r.F64();
    rec.newton_iterations = r.I64();
    rec.useful = r.Bool();
    const std::uint64_t deps_n = r.U64();
    rec.deps.reserve(deps_n);
    for (std::uint64_t d = 0; d < deps_n; ++d) rec.deps.push_back(r.I64());
    ckpt.ledger.push_back(std::move(rec));
  }

  const std::uint64_t history_n = r.U64();
  ckpt.history.reserve(history_n);
  for (std::uint64_t i = 0; i < history_n; ++i) {
    CheckpointPoint point;
    point.time = r.F64();
    point.x = r.DoubleVec();
    point.q = r.DoubleVec();
    point.qdot = r.DoubleVec();
    point.auxiliary = r.Bool();
    point.ledger_id = r.I64();
    ckpt.history.push_back(std::move(point));
  }

  ckpt.stats = ReadStats(r);

  const std::uint64_t steps_n = r.U64();
  ckpt.steps.reserve(steps_n);
  for (std::uint64_t i = 0; i < steps_n; ++i) {
    StepRecord step;
    step.time = r.F64();
    step.h = r.F64();
    step.newton_iterations = static_cast<int>(r.I64());
    step.lte = r.F64();
    step.accepted = r.Bool();
    step.restart_step = r.Bool();
    ckpt.steps.push_back(step);
  }

  ckpt.trace_times = r.DoubleVec();
  ckpt.trace_values = r.DoubleVec();
  ckpt.lu_seed_full = r.DoubleVec();
  ckpt.lu_seed_numeric = r.DoubleVec();
  ckpt.bbd_seed_full = r.DoubleVec();
  ckpt.bbd_seed_numeric = r.DoubleVec();
  const std::uint64_t ctx_seeds_n = r.U64();
  ckpt.context_seeds.reserve(ctx_seeds_n);
  for (std::uint64_t i = 0; i < ctx_seeds_n; ++i) {
    CheckpointContextSeeds seeds;
    seeds.lu_full = r.DoubleVec();
    seeds.lu_numeric = r.DoubleVec();
    seeds.bbd_full = r.DoubleVec();
    seeds.bbd_numeric = r.DoubleVec();
    ckpt.context_seeds.push_back(std::move(seeds));
  }
  if (!r.AtEnd()) {
    throw CheckpointError("checkpoint payload has " + std::to_string(r.remaining()) +
                          " trailing bytes");
  }
  if (ckpt.num_probes != 0 &&
      ckpt.trace_values.size() != ckpt.trace_times.size() * ckpt.num_probes) {
    throw CheckpointError("checkpoint trace shape mismatch");
  }
  return ckpt;
}

TransientCheckpoint LoadCheckpoint(const std::string& path_base) {
  const util::LoadedCheckpoint loaded = util::LoadNewestCheckpoint(path_base);
  TransientCheckpoint ckpt = DeserializeCheckpoint(loaded.payload);
  ckpt.resume_generation = loaded.generation;
  return ckpt;
}

void ValidateResume(const TransientCheckpoint& ckpt, const std::string& engine,
                    const std::string& scheme, std::int64_t partition_pieces,
                    std::uint64_t num_unknowns, std::uint64_t num_probes,
                    double tstop) {
  std::string mismatches;
  const auto mismatch = [&mismatches](const std::string& field, const std::string& have,
                                      const std::string& want) {
    if (!mismatches.empty()) mismatches += "; ";
    mismatches += field + ": checkpoint has " + have + ", run has " + want;
  };
  if (ckpt.engine != engine) mismatch("engine", ckpt.engine, engine);
  if (ckpt.scheme != scheme) mismatch("scheme", ckpt.scheme, scheme);
  if (ckpt.partition_pieces != partition_pieces) {
    mismatch("partition_pieces", std::to_string(ckpt.partition_pieces),
             std::to_string(partition_pieces));
  }
  if (ckpt.num_unknowns != num_unknowns) {
    mismatch("num_unknowns", std::to_string(ckpt.num_unknowns),
             std::to_string(num_unknowns));
  }
  if (ckpt.num_probes != num_probes) {
    mismatch("num_probes", std::to_string(ckpt.num_probes), std::to_string(num_probes));
  }
  if (ckpt.tstop != tstop) {
    mismatch("tstop", std::to_string(ckpt.tstop), std::to_string(tstop));
  }
  if (!mismatches.empty()) {
    throw CheckpointError("resume checkpoint does not match this run (" + mismatches +
                          ")");
  }
}

// ---------------------------------------------------------------------------
// CheckpointSink
// ---------------------------------------------------------------------------

CheckpointSink::CheckpointSink(const ResilienceOptions& options, ResilienceStats& stats)
    : path_(options.checkpoint_path),
      every_steps_(options.checkpoint_every_steps),
      every_seconds_(options.checkpoint_every_seconds),
      generation_(options.resume != nullptr ? options.resume->resume_generation + 1 : 0),
      stats_(stats) {}

void CheckpointSink::MaybeWrite(
    std::uint64_t accepted_steps,
    const std::function<std::vector<std::uint8_t>()>& serialize) {
  if (!enabled()) return;
  const bool step_due =
      every_steps_ > 0 && accepted_steps >= last_write_steps_ + every_steps_;
  const bool wall_due =
      every_seconds_ > 0 && since_last_write_.Seconds() >= every_seconds_;
  if (!step_due && !wall_due) return;
  last_write_steps_ = accepted_steps;
  Write(serialize);
}

void CheckpointSink::WriteFinal(
    const std::function<std::vector<std::uint8_t>()>& serialize) {
  if (!enabled()) return;
  Write(serialize);
}

void CheckpointSink::Write(
    const std::function<std::vector<std::uint8_t>()>& serialize) {
  WP_TSPAN("ckpt", "checkpoint_write");
  since_last_write_.Reset();
  try {
    const std::vector<std::uint8_t> payload = serialize();
    const std::size_t bytes = util::WriteCheckpointSlot(path_, payload, generation_);
    stats_.ckpt_bytes_last = bytes;
    stats_.ckpt_generation = generation_;
    ++stats_.ckpt_writes;
    ++generation_;
  } catch (const CheckpointError&) {
    ++stats_.ckpt_write_failures;
  }
}

// ---------------------------------------------------------------------------
// RunBudget
// ---------------------------------------------------------------------------

std::string RunBudget::Exceeded(std::uint64_t accepted_steps, std::uint64_t newton_total,
                                double wall_seconds) const {
  if (max_steps_ > 0 && accepted_steps >= max_steps_) {
    return std::string(kBudgetExhausted) + ": accepted steps reached --max-steps " +
           std::to_string(max_steps_);
  }
  if (max_newton_ > 0 && newton_total >= max_newton_) {
    return std::string(kBudgetExhausted) +
           ": Newton iterations reached --max-newton-total " + std::to_string(max_newton_);
  }
  if (max_wall_ > 0 && wall_seconds >= max_wall_) {
    return std::string(kBudgetExhausted) + ": wall clock reached --max-wall " +
           std::to_string(max_wall_) + "s";
  }
  return {};
}

// ---------------------------------------------------------------------------
// StallWatchdog
// ---------------------------------------------------------------------------

StallWatchdog::StallWatchdog(const ResilienceOptions& options, ResilienceStats& stats)
    : enabled_(options.watchdog),
      interval_seconds_(options.watchdog_interval_seconds),
      stall_intervals_(options.watchdog_stall_intervals),
      stats_(stats) {}

StallWatchdog::~StallWatchdog() { Stop(); }

void StallWatchdog::AddSource(const std::atomic<std::uint64_t>* beat) {
  WP_ASSERT(!thread_.joinable());
  sources_.push_back(beat);
}

void StallWatchdog::Start() {
  if (!enabled_ || thread_.joinable()) return;
  stopping_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void StallWatchdog::Stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void StallWatchdog::Finish() {
  Stop();
  stats_.watchdog_stalls = stalls_.load(std::memory_order_relaxed);
}

std::string StallWatchdog::AbortReason() const {
  return "watchdog stall: no heartbeat progress for " +
         std::to_string(stall_intervals_) + " intervals of " +
         std::to_string(interval_seconds_) + "s";
}

std::uint64_t StallWatchdog::SampleSum() const {
  std::uint64_t sum = 0;
  for (const auto* beat : sources_) sum += beat->load(std::memory_order_relaxed);
  return sum;
}

void StallWatchdog::Loop() {
  util::telemetry::ScopedLane lane(63, "watchdog");
  std::uint64_t last_sum = SampleSum();
  int no_progress = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    const auto wait = std::chrono::duration<double>(interval_seconds_);
    cv_.wait_for(lock, wait, [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    const std::uint64_t sum = SampleSum();
    const bool forced = util::fault::Enabled() && WP_FAULT_POINT("watchdog.stall");
    if (sum == last_sum || forced) {
      ++no_progress;
      if (no_progress == stall_intervals_) {
        stalls_.fetch_add(1, std::memory_order_relaxed);
        WP_TINSTANT("watchdog", "stall_detected");
        escalate_.store(true, std::memory_order_release);
      }
    } else {
      no_progress = 0;
    }
    last_sum = sum;
    lock.lock();
  }
}

// ---------------------------------------------------------------------------
// BreakerBoard
// ---------------------------------------------------------------------------

BreakerBoard::BreakerBoard(const ResilienceOptions& options, ResilienceStats& stats)
    : enabled_(options.breakers),
      trip_threshold_(options.breaker_trip_threshold),
      cooldown_steps_(options.breaker_cooldown_steps),
      stats_(stats) {}

void BreakerBoard::Trip(Breaker& breaker, Feature feature) {
  const bool retrip = breaker.state == State::kHalfOpen;
  breaker.state = State::kOpen;
  breaker.consecutive_failures = 0;
  ++breaker.trips;
  // Each re-trip doubles the cooldown: a feature that keeps failing its
  // probes gets exponentially rarer chances to waste work.
  breaker.cooldown_left = cooldown_steps_ << std::min<std::uint64_t>(breaker.trips - 1, 16);
  ++stats_.breaker_trips;
  if (retrip) ++stats_.breaker_retrips;
  ++stats_.feature_trips[static_cast<std::size_t>(feature)];
  WP_TINSTANT("resilience", "breaker_trip");
}

std::uint64_t BreakerBoard::OnSolveOutcome(std::uint64_t active_mask, bool converged,
                                           double seconds) {
  if (!enabled_ || active_mask == 0) return 0;
  const bool forced = util::fault::Enabled() && WP_FAULT_POINT("breaker.trip");
  std::uint64_t tripped = 0;
  for (int f = 0; f < kNumFeatures; ++f) {
    if ((active_mask & FeatureBit(static_cast<Feature>(f))) == 0) continue;
    Breaker& breaker = breakers_[static_cast<std::size_t>(f)];
    if (breaker.state == State::kOpen) continue;
    breaker.failure_ewma =
        (1.0 - kBreakerEma) * breaker.failure_ewma + (converged ? 0.0 : kBreakerEma);
    breaker.latency_ewma =
        (1.0 - kBreakerEma) * breaker.latency_ewma + kBreakerEma * seconds;
    if (converged && !forced) {
      breaker.consecutive_failures = 0;
      if (breaker.state == State::kHalfOpen) breaker.state = State::kClosed;
      continue;
    }
    ++breaker.consecutive_failures;
    if (forced || breaker.state == State::kHalfOpen ||
        breaker.consecutive_failures >= trip_threshold_) {
      Trip(breaker, static_cast<Feature>(f));
      tripped |= FeatureBit(static_cast<Feature>(f));
    }
  }
  return tripped;
}

std::uint64_t BreakerBoard::OnAcceptedStep() {
  if (!enabled_) return 0;
  std::uint64_t reprobe = 0;
  for (int f = 0; f < kNumFeatures; ++f) {
    Breaker& breaker = breakers_[static_cast<std::size_t>(f)];
    if (breaker.state != State::kOpen) continue;
    if (breaker.cooldown_left > 0) --breaker.cooldown_left;
    if (breaker.cooldown_left == 0) {
      breaker.state = State::kHalfOpen;
      breaker.consecutive_failures = 0;
      ++stats_.breaker_reprobes;
      reprobe |= FeatureBit(static_cast<Feature>(f));
    }
  }
  return reprobe;
}

}  // namespace wavepipe::engine
