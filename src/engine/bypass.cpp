#include "engine/bypass.hpp"

#include <algorithm>
#include <cmath>

namespace wavepipe::engine {

void DeviceBypass::Configure(const Circuit& circuit, const MnaStructure& structure,
                             const SimOptions& options) {
  (void)structure;
  active_ = false;
  replay_ok_ = false;
  have_scalars_ = false;
  entries_.clear();
  ctrl_unknowns_.clear();
  ctrl_cached_.clear();
  jac_slots_.clear();
  jac_cached_.clear();
  jac_snap_.clear();
  rhs_rows_.clear();
  rhs_cached_.clear();
  rhs_snap_.clear();
  state_cached_.clear();
  hist_cached_.clear();
  limit_cached_.clear();
  if (!options.device_bypass) return;

  num_nodes_ = circuit.num_nodes();
  reltol_ = options.reltol;
  vntol_ = options.vntol;
  abstol_ = options.abstol;
  vtol_scale_ = options.bypass_vtol * kLatencyScale;

  const auto& devices = circuit.devices();
  entries_.resize(devices.size());
  std::vector<int> ctrl, jac, rhs;
  bool any = false;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    Entry& e = entries_[i];
    ctrl.clear();
    devices[i]->ControllingUnknowns(ctrl);
    // Ground terminals contribute a constant 0 V — no need to track them.
    ctrl.erase(std::remove_if(ctrl.begin(), ctrl.end(), [](int u) { return u < 0; }),
               ctrl.end());
    if (ctrl.empty()) continue;  // device did not opt in

    jac.clear();
    rhs.clear();
    devices[i]->StampFootprint(jac, rhs);
    // Footprints are supersets and may repeat a slot (shared terminals); the
    // delta capture must see each slot exactly once.
    auto dedup = [](std::vector<int>& v) {
      v.erase(std::remove_if(v.begin(), v.end(), [](int s) { return s < 0; }), v.end());
      std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    dedup(jac);
    dedup(rhs);

    e.ctrl_begin = static_cast<int>(ctrl_unknowns_.size());
    ctrl_unknowns_.insert(ctrl_unknowns_.end(), ctrl.begin(), ctrl.end());
    e.ctrl_end = static_cast<int>(ctrl_unknowns_.size());
    e.jac_begin = static_cast<int>(jac_slots_.size());
    jac_slots_.insert(jac_slots_.end(), jac.begin(), jac.end());
    e.jac_end = static_cast<int>(jac_slots_.size());
    e.rhs_begin = static_cast<int>(rhs_rows_.size());
    rhs_rows_.insert(rhs_rows_.end(), rhs.begin(), rhs.end());
    e.rhs_end = static_cast<int>(rhs_rows_.size());
    const Circuit::SlotRange states = circuit.device_state_range(i);
    const Circuit::SlotRange limits = circuit.device_limit_range(i);
    e.state_begin = states.begin;
    e.state_end = states.end;
    e.limit_begin = limits.begin;
    e.limit_end = limits.end;
    e.bypassable = true;
    any = true;
  }
  if (!any) return;

  ctrl_cached_.assign(ctrl_unknowns_.size(), 0.0);
  jac_cached_.assign(jac_slots_.size(), 0.0);
  jac_snap_.assign(jac_slots_.size(), 0.0);
  rhs_cached_.assign(rhs_rows_.size(), 0.0);
  rhs_snap_.assign(rhs_rows_.size(), 0.0);
  state_cached_.assign(static_cast<std::size_t>(circuit.num_states()), 0.0);
  hist_cached_.assign(static_cast<std::size_t>(circuit.num_states()), 0.0);
  limit_cached_.assign(static_cast<std::size_t>(circuit.num_limit_slots()), 0.0);
  active_ = true;
}

void DeviceBypass::Invalidate() {
  for (Entry& e : entries_) e.valid = false;
}

void DeviceBypass::BeginPass(double a0, bool transient, double gmin,
                             double source_scale) {
  if (!active_) return;
  // Bitwise scalar gate: devices may depend on any of these in any way, so
  // replay is only sound when the whole tuple is unchanged.  A mismatched
  // pass evaluates every device fully, which refreshes every cache under the
  // new scalars — so the pass after it can replay again.
  replay_ok_ = have_scalars_ && a0 == pass_a0_ && transient == pass_transient_ &&
               gmin == pass_gmin_ && source_scale == pass_source_scale_;
  pass_a0_ = a0;
  pass_transient_ = transient;
  pass_gmin_ = gmin;
  pass_source_scale_ = source_scale;
  have_scalars_ = true;
}

bool DeviceBypass::Replayable(const Entry& e, const devices::EvalContext& eval) const {
  for (int c = e.ctrl_begin; c < e.ctrl_end; ++c) {
    const int u = ctrl_unknowns_[static_cast<std::size_t>(c)];
    const double v = eval.x[static_cast<std::size_t>(u)];
    const double vc = ctrl_cached_[static_cast<std::size_t>(c)];
    const double tol =
        vtol_scale_ * (reltol_ * std::max(std::abs(v), std::abs(vc)) +
                       (u < num_nodes_ ? vntol_ : abstol_));
    if (std::abs(v - vc) > tol) return false;
  }
  // The history term enters the companion RHS linearly (dq/dt = a0*q + hist),
  // so a drifted history falsifies the cached stamp even at frozen voltages.
  for (int s = e.state_begin; s < e.state_end; ++s) {
    const double h = eval.state_hist[static_cast<std::size_t>(s)];
    const double hc = hist_cached_[static_cast<std::size_t>(s)];
    const double tol =
        vtol_scale_ * (reltol_ * std::max(std::abs(h), std::abs(hc)) + abstol_);
    if (std::abs(h - hc) > tol) return false;
  }
  return true;
}

bool DeviceBypass::Process(std::size_t device_index, const devices::Device& device,
                           devices::EvalContext& eval) {
  Entry& e = entries_[device_index];
  if (!e.bypassable) {
    device.Eval(eval);
    return false;
  }

  if (!e.capture_on) {
    // Sleeping: the replay rate did not justify the bookkeeping.  Evaluate
    // plainly until the sleep window ends, then re-probe with a fresh cache.
    device.Eval(eval);
    full_.fetch_add(1, std::memory_order_relaxed);
    if (++e.window >= kSleepLen) {
      e.window = 0;
      e.hits = 0;
      e.capture_on = true;
    }
    return false;
  }

  if (replay_ok_ && e.valid && Replayable(e, eval)) {
    for (int j = e.jac_begin; j < e.jac_end; ++j) {
      eval.jacobian_values[static_cast<std::size_t>(jac_slots_[static_cast<std::size_t>(j)])] +=
          jac_cached_[static_cast<std::size_t>(j)];
    }
    for (int r = e.rhs_begin; r < e.rhs_end; ++r) {
      eval.rhs[static_cast<std::size_t>(rhs_rows_[static_cast<std::size_t>(r)])] +=
          rhs_cached_[static_cast<std::size_t>(r)];
    }
    for (int s = e.state_begin; s < e.state_end; ++s) {
      eval.state_now[static_cast<std::size_t>(s)] = state_cached_[static_cast<std::size_t>(s)];
    }
    for (int l = e.limit_begin; l < e.limit_end; ++l) {
      eval.limit_now[static_cast<std::size_t>(l)] = limit_cached_[static_cast<std::size_t>(l)];
    }
    bypassed_.fetch_add(1, std::memory_order_relaxed);
    ++e.hits;
    TickWindow(e);
    return true;
  }

  // Full evaluation with delta capture: snapshot the footprint, run the
  // model, store what it added plus the inputs it saw.
  for (int j = e.jac_begin; j < e.jac_end; ++j) {
    jac_snap_[static_cast<std::size_t>(j)] =
        eval.jacobian_values[static_cast<std::size_t>(jac_slots_[static_cast<std::size_t>(j)])];
  }
  for (int r = e.rhs_begin; r < e.rhs_end; ++r) {
    rhs_snap_[static_cast<std::size_t>(r)] =
        eval.rhs[static_cast<std::size_t>(rhs_rows_[static_cast<std::size_t>(r)])];
  }
  device.Eval(eval);
  for (int j = e.jac_begin; j < e.jac_end; ++j) {
    jac_cached_[static_cast<std::size_t>(j)] =
        eval.jacobian_values[static_cast<std::size_t>(jac_slots_[static_cast<std::size_t>(j)])] -
        jac_snap_[static_cast<std::size_t>(j)];
  }
  for (int r = e.rhs_begin; r < e.rhs_end; ++r) {
    rhs_cached_[static_cast<std::size_t>(r)] =
        eval.rhs[static_cast<std::size_t>(rhs_rows_[static_cast<std::size_t>(r)])] -
        rhs_snap_[static_cast<std::size_t>(r)];
  }
  for (int c = e.ctrl_begin; c < e.ctrl_end; ++c) {
    ctrl_cached_[static_cast<std::size_t>(c)] =
        eval.x[static_cast<std::size_t>(ctrl_unknowns_[static_cast<std::size_t>(c)])];
  }
  for (int s = e.state_begin; s < e.state_end; ++s) {
    state_cached_[static_cast<std::size_t>(s)] = eval.state_now[static_cast<std::size_t>(s)];
    hist_cached_[static_cast<std::size_t>(s)] = eval.state_hist[static_cast<std::size_t>(s)];
  }
  for (int l = e.limit_begin; l < e.limit_end; ++l) {
    limit_cached_[static_cast<std::size_t>(l)] = eval.limit_now[static_cast<std::size_t>(l)];
  }
  e.valid = true;
  full_.fetch_add(1, std::memory_order_relaxed);
  TickWindow(e);
  return false;
}

void DeviceBypass::TickWindow(Entry& e) {
  if (++e.window < kProbeLen) return;
  if (e.hits * 8 < kProbeLen) {
    // Fewer than 1/8 of the probe window replayed: the capture overhead is
    // not paying for itself on this device right now.
    e.capture_on = false;
    e.valid = false;
  }
  e.window = 0;
  e.hits = 0;
}

}  // namespace wavepipe::engine
