#include "engine/newton.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/telemetry.hpp"

namespace wavepipe::engine {

void NewtonStats::ExportCounters(util::telemetry::CounterRegistry& registry) const {
  registry.Count("newton.converged", converged ? 1 : 0);
  registry.Count("newton.iterations", static_cast<std::uint64_t>(iterations));
  registry.Value("newton.final_delta", final_delta);
  registry.Count("newton.lu_full_factors", static_cast<std::uint64_t>(lu_full_factors));
  registry.Count("newton.lu_refactors", static_cast<std::uint64_t>(lu_refactors));
  registry.Count("newton.chord_solves", static_cast<std::uint64_t>(chord_solves));
  registry.Count("newton.forced_refactors", static_cast<std::uint64_t>(forced_refactors));
  registry.Count("newton.singular", singular ? 1 : 0);
}

void AssemblyStats::ExportCounters(util::telemetry::CounterRegistry& registry) const {
  registry.Count("assembly.colors", static_cast<std::uint64_t>(colors));
  registry.Count("assembly.conflict_edges", conflict_edges);
  registry.Count("assembly.max_degree", static_cast<std::uint64_t>(max_degree));
  registry.Count("assembly.passes", passes);
  registry.Value("assembly.zero_seconds", zero_seconds);
  registry.Value("assembly.stamp_seconds", stamp_seconds);
  registry.Value("assembly.merge_seconds", merge_seconds);
}

SolveContext::SolveContext(const Circuit& circuit, const MnaStructure& structure)
    : matrix(structure.pattern()),
      rhs(static_cast<std::size_t>(structure.dimension()), 0.0),
      x(static_cast<std::size_t>(structure.dimension()), 0.0),
      x_new(static_cast<std::size_t>(structure.dimension()), 0.0),
      state_now(static_cast<std::size_t>(circuit.num_states()), 0.0),
      state_hist(static_cast<std::size_t>(circuit.num_states()), 0.0),
      limit_a(static_cast<std::size_t>(circuit.num_limit_slots()), 0.0),
      limit_b(static_cast<std::size_t>(circuit.num_limit_slots()), 0.0),
      circuit_(&circuit),
      structure_(&structure) {
  WP_ASSERT(circuit.finalized());
}

void SolveContext::RecordFactorSeeds(FactorSeeds& seeds, bool did_full_factor) {
  if (!record_factor_seeds) return;
  seeds.numeric.assign(matrix.values().begin(), matrix.values().end());
  if (did_full_factor || seeds.full.empty()) seeds.full = seeds.numeric;
}

void SolveContext::PrimeFactorsFromSeeds(const FactorSeeds& lu_from,
                                         const FactorSeeds& bbd_from) {
  const auto load = [this](std::span<const double> values) {
    WP_ASSERT(values.size() == matrix.values().size());
    std::copy(values.begin(), values.end(), matrix.mutable_values().begin());
  };
  if (lu_from.valid()) {
    load(lu_from.full);
    lu.Factor(matrix);
    if (lu_from.numeric != lu_from.full) {
      load(lu_from.numeric);
      // The interrupted run's Refactor on these exact values succeeded, so
      // the fallback only guards adversarial checkpoint contents.
      if (!lu.Refactor(matrix)) lu.Factor(matrix);
    }
    lu_seeds = lu_from;
  }
  if (bbd_from.valid() && bbd.configured()) {
    load(bbd_from.full);
    bbd.FactorOrRefactor(matrix, factor_pool);
    if (bbd_from.numeric != bbd_from.full) {
      load(bbd_from.numeric);
      bbd.FactorOrRefactor(matrix, factor_pool);
    }
    bbd_seeds = bbd_from;
  }
  matrix.ZeroValues();
}

void EvalDevices(SolveContext& ctx, const NewtonInputs& inputs, bool limit_valid,
                 bool first_iteration) {
  WP_TSPAN("assembly", "eval_devices");
  // Latency bypass: open the pass gate before either assembly path runs so
  // the serial loop and the colored assembler share one replay decision.
  ctx.bypass.BeginPass(inputs.a0, inputs.transient, inputs.gmin, inputs.source_scale);

  if (ctx.assembler != nullptr) {
    // Delegated zero+stamp (e.g. colored conflict-free parallel assembly).
    ctx.assembler->Assemble(ctx, inputs, limit_valid, first_iteration);
  } else {
    ctx.matrix.ZeroValues();
    std::fill(ctx.rhs.begin(), ctx.rhs.end(), 0.0);

    devices::EvalContext eval;
    eval.time = inputs.time;
    eval.a0 = inputs.a0;
    eval.transient = inputs.transient;
    eval.first_iteration = first_iteration;
    eval.gmin = inputs.gmin;
    eval.source_scale = inputs.source_scale;
    eval.gshunt = inputs.gshunt;
    eval.x = ctx.x;
    eval.jacobian_values = ctx.matrix.mutable_values();
    eval.rhs = ctx.rhs;
    eval.state_now = ctx.state_now;
    eval.state_hist = ctx.state_hist;
    eval.limit_prev = ctx.limit_a;
    eval.limit_now = ctx.limit_b;
    eval.limit_valid = limit_valid;

    const auto& devices = ctx.circuit().devices();
    if (ctx.bypass.active()) {
      for (std::size_t i = 0; i < devices.size(); ++i) {
        ctx.bypass.Process(i, *devices[i], eval);
      }
    } else {
      for (const auto& device : devices) device->Eval(eval);
    }
  }

  // Fault site: a device model producing a non-finite entry.  The poisoned
  // RHS propagates through the linear solve into the iterate, where the
  // Newton loop's finite check classifies the point as divergent.
  if (WP_FAULT_POINT("device.eval_nan")) {
    ctx.rhs[0] = std::numeric_limits<double>::quiet_NaN();
  }

  // Gmin-stepping shunt: conductance from every node to ground.  Stamped
  // after devices so it can't be overwritten.
  if (inputs.gshunt > 0.0) {
    auto values = ctx.matrix.mutable_values();
    for (int slot : ctx.structure().node_diag_slots()) values[slot] += inputs.gshunt;
  }

  // Nodeset clamps (.ic): tie each listed node to its target voltage.
  if (inputs.nodeset_g > 0.0) {
    auto values = ctx.matrix.mutable_values();
    const auto& diag = ctx.structure().node_diag_slots();
    for (const auto& [node, volts] : inputs.nodesets) {
      if (node < 0 || node >= static_cast<int>(diag.size())) continue;  // voltages only
      values[diag[static_cast<std::size_t>(node)]] += inputs.nodeset_g;
      ctx.rhs[static_cast<std::size_t>(node)] += inputs.nodeset_g * volts;
    }
  }

  // The values just written to limit_b become "previous" for the next pass.
  std::swap(ctx.limit_a, ctx.limit_b);
}

ChordPolicy::ChordPolicy(SolveContext& ctx, const NewtonInputs& inputs,
                         const SimOptions& options)
    : ctx_(&ctx),
      options_(&options),
      a0_(inputs.a0),
      prev_worst_(std::numeric_limits<double>::infinity()) {
  // Chord reuse targets ctx.lu; under the BBD path that factor is idle, so
  // chord disables itself rather than solve against a never-refreshed LU.
  enabled_ = options.chord_newton && inputs.damping >= 1.0 &&
             inputs.gshunt == 0.0 && inputs.nodeset_g == 0.0 && !ctx.partition_active();
  // Adaptive attempt gate: a solve inside a backoff window never tries chord
  // steps (it still refreshes the factor snapshot for later reuse).
  allowed_ = enabled_;
  if (allowed_ && ctx.factor_reuse.backoff_solves > 0) {
    --ctx.factor_reuse.backoff_solves;
    allowed_ = false;
  }
}

bool ChordPolicy::ShouldUseChord(int iter) const {
  const FactorReusePolicy& reuse = ctx_->factor_reuse;
  if (!allowed_ || chord_off_ || !reuse.factor_valid || !reuse.worthwhile ||
      reuse.chord_iters >= options_->chord_iter_budget) {
    return false;
  }
  if (iter > 0) return true;
  const double drift = std::abs(a0_ - reuse.factor_a0);
  const double scale = std::max(std::abs(a0_), std::abs(reuse.factor_a0));
  return drift <= options_->chord_a0_reltol * scale || (drift == 0.0 && scale == 0.0);
}

void ChordPolicy::BeginChordStep(NewtonStats& stats) {
  FactorReusePolicy& reuse = ctx_->factor_reuse;
  // A reused factor whose source matrix is bitwise-identical to the current
  // one is not stale at all — the "chord" solve is an exact Newton solve
  // (linear circuits at a stable step size, or a nonlinear circuit whose
  // devices all replayed from the bypass cache).  Only a genuinely stale
  // factor needs the confirming fresh-factor iteration before acceptance.
  const auto values = ctx_->matrix.values();
  exact_factor_ = reuse.factor_values.size() == values.size() &&
                  std::equal(values.begin(), values.end(), reuse.factor_values.begin());
  ++reuse.chord_iters;
  ++stats.chord_solves;
  attempted_ = true;
  current_is_chord_ = true;
}

void ChordPolicy::NoteFactorAttempt() { ctx_->factor_reuse.factor_valid = false; }

void ChordPolicy::NoteFreshFactor() {
  FactorReusePolicy& reuse = ctx_->factor_reuse;
  reuse.factor_valid = enabled_;
  reuse.factor_a0 = a0_;
  reuse.chord_iters = 0;
  exact_factor_ = true;
  current_is_chord_ = false;
  if (enabled_) {
    // Cost gate: chord reuse only pays where factorization does real work,
    // i.e. the pattern fills in.  The ratio is symbolic (stable across
    // refactors), so recomputing it here is just a few loads.
    const auto& lu_stats = ctx_->lu.stats();
    const auto values = ctx_->matrix.values();
    const double fill = values.empty()
                            ? 1.0
                            : static_cast<double>(lu_stats.nnz_l + lu_stats.nnz_u) /
                                  static_cast<double>(values.size());
    reuse.worthwhile =
        options_->chord_fill_ratio <= 0.0 || fill >= options_->chord_fill_ratio;
    if (reuse.worthwhile) {
      reuse.factor_values.assign(values.begin(), values.end());
    } else {
      reuse.factor_values.clear();
    }
  } else {
    reuse.factor_values.clear();
  }
}

bool ChordPolicy::FinishIteration(double worst, bool passed, NewtonStats& stats) {
  const bool use_chord = current_is_chord_;
  current_is_chord_ = false;
  // Chord safety net: if a chord iterate failed to contract (or the fault
  // site "chord.degraded" simulates that), disable chord for the rest of
  // this solve and ride full Newton instead of a stale factor.  The budget
  // check catches slow-but-steady chains the rate monitor never trips.
  if (use_chord && !chord_off_) {
    const bool degraded =
        (worst > options_->chord_rate_limit * prev_worst_ && worst > 1.0) ||
        ctx_->factor_reuse.chord_iters >= options_->chord_iter_budget ||
        WP_FAULT_POINT("chord.degraded");
    if (degraded) {
      chord_off_ = true;
      ++stats.forced_refactors;
    }
  }
  // A-posteriori trust in a chord iterate without refactoring: two
  // consecutive chord steps with the same factor observe the contraction
  // rate rho of the chord map, which bounds the distance to the fixed
  // point by worst * rho / (1 - rho).  Requiring that bound <= 0.1 keeps
  // the accepted point within a tenth of the Newton tolerance — far below
  // the wobble the step controller could mistake for truncation error.
  // The rho <= 0.7 cap rejects the noise regime where a single-pair rate
  // estimate says nothing (a squashing stale LU shows rho near 1).
  const bool had_rate_evidence = prev_chord_;
  const double chord_rate = had_rate_evidence
                                ? worst / std::max(prev_worst_, 1e-300)
                                : std::numeric_limits<double>::infinity();
  const bool rate_trusted =
      use_chord && had_rate_evidence && chord_rate <= 0.7 &&
      worst * (chord_rate / (1.0 - chord_rate)) <= 0.1;
  prev_worst_ = worst;
  prev_chord_ = use_chord;
  if (!passed) return false;
  // An update measured through a genuinely stale factor can pass the norm
  // test far from the solution (the old LU squashes the true residual), so
  // a chord iterate only converges the solve when its factor is exact
  // (source matrix bitwise-equal) or its observed contraction rate bounds
  // the remaining error well inside tolerance.  A first passing chord
  // iterate has no rate evidence yet: run one more chord step to measure
  // it.  A passing iterate whose measured rate is too weak falls back to a
  // confirming fresh-factor iteration (chord_off_ here).
  if (use_chord && !exact_factor_ && !rate_trusted) {
    if (!had_rate_evidence && !chord_off_) {
      // No evidence yet — gather it with one more chord iteration.
    } else {
      chord_off_ = true;
    }
    return false;
  }
  return true;
}

void ChordPolicy::Settle(bool converged) {
  // Widen or reset the backoff window from how chord fared this solve: an
  // unproductive (or failed) solve doubles the window, a productive one
  // clears it so the next solve tries again immediately.
  if (!attempted_) return;
  FactorReusePolicy& reuse = ctx_->factor_reuse;
  if (chord_off_ || !converged) {
    reuse.backoff_len = std::min(std::max(1, reuse.backoff_len * 2), 32);
    reuse.backoff_solves = reuse.backoff_len;
  } else {
    reuse.backoff_len = 0;
  }
}

NewtonStats SolveNewton(SolveContext& ctx, const NewtonInputs& inputs,
                        const SimOptions& options, int max_iterations) {
  const int n = ctx.structure().dimension();
  const int num_nodes = ctx.circuit().num_nodes();
  NewtonStats stats;

  // Fault site: Newton declares divergence without iterating.  Exercises
  // every step-shrink / rescue / abort path above this function.
  if (WP_FAULT_POINT("newton.converge")) return stats;

  ChordPolicy chord(ctx, inputs, options);

  bool limit_valid = false;
  for (int iter = 0; iter < max_iterations; ++iter) {
    stats.iterations = iter + 1;
    ++ctx.total_newton_iterations;
    ctx.heartbeat.fetch_add(1, std::memory_order_relaxed);

    try {
      EvalDevices(ctx, inputs, limit_valid, iter == 0);
    } catch (const SingularMatrixError&) {
      // A ReducedSubnet's interior factor hit a zero pivot (real, or injected
      // via "reduce.singular").  Same contract as a singular solve pivot: a
      // failed solve the step-shrink / rescue ladder owns, not an unwound run.
      stats.converged = false;
      stats.singular = true;
      stats.final_delta = std::numeric_limits<double>::infinity();
      chord.Settle(false);
      return stats;
    }
    limit_valid = true;

    if (chord.ShouldUseChord(iter)) {
      chord.BeginChordStep(stats);
      // Chord step with the reused factor, in true-residual form:
      //   x_new = x + LU_old^{-1} (b - J_new x)
      // The residual uses the FRESH Jacobian and RHS, so a converged chord
      // iterate satisfies the same fixed-point equation as a full Newton
      // iterate — only the path there changes, never the accepted solution.
      WP_TSPAN("solve", "chord_step");
      std::copy(ctx.x.begin(), ctx.x.end(), ctx.x_new.begin());
      ctx.lu.ChordStep(ctx.matrix, ctx.rhs, ctx.x_new, ctx.refine_work, ctx.lu_work,
                       ctx.factor_pool);
    } else if (ctx.partition_active()) {
      // Bordered-block-diagonal path: per-piece parallel factors + Schur
      // interface coupling on ctx.factor_pool.  Same failure contract as the
      // monolithic branch — a singular piece/interface pivot becomes a failed
      // solve the step-shrink / rescue ladder handles.
      const auto before_full = ctx.bbd.stats().full_factor_count;
      const auto before_re = ctx.bbd.stats().refactor_count;
      try {
        WP_TSPAN("factor", "bbd_factor");
        ctx.bbd.FactorOrRefactor(ctx.matrix, ctx.factor_pool);
      } catch (const SingularMatrixError&) {
        stats.converged = false;
        stats.singular = true;
        stats.final_delta = std::numeric_limits<double>::infinity();
        chord.Settle(false);
        return stats;
      }
      stats.lu_full_factors +=
          static_cast<int>(ctx.bbd.stats().full_factor_count - before_full);
      stats.lu_refactors += static_cast<int>(ctx.bbd.stats().refactor_count - before_re);
      ctx.RecordFactorSeeds(ctx.bbd_seeds,
                            ctx.bbd.stats().full_factor_count != before_full);

      std::copy(ctx.rhs.begin(), ctx.rhs.end(), ctx.x_new.begin());
      ctx.bbd.Solve(ctx.x_new, ctx.factor_pool);
    } else {
      const auto before_factor = ctx.lu.stats().factor_count;
      const auto before_refactor = ctx.lu.stats().refactor_count;
      chord.NoteFactorAttempt();
      try {
        WP_TSPAN("factor", "lu_factor");
        ctx.lu.FactorOrRefactor(ctx.matrix, ctx.factor_pool);
      } catch (const SingularMatrixError&) {
        // A singular pivot at this trial point is reported as a failed solve,
        // not an unwound simulation: the caller shrinks the step or climbs the
        // rescue ladder, both of which change the Jacobian it will retry with.
        stats.converged = false;
        stats.singular = true;
        stats.final_delta = std::numeric_limits<double>::infinity();
        chord.Settle(false);
        return stats;
      }
      stats.lu_full_factors += static_cast<int>(ctx.lu.stats().factor_count - before_factor);
      stats.lu_refactors += static_cast<int>(ctx.lu.stats().refactor_count - before_refactor);
      ctx.RecordFactorSeeds(ctx.lu_seeds,
                            ctx.lu.stats().factor_count != before_factor);
      chord.NoteFreshFactor();

      WP_TSPAN("solve", "triangular_solve");
      std::copy(ctx.rhs.begin(), ctx.rhs.end(), ctx.x_new.begin());
      ctx.lu.SolveParallel(ctx.x_new, ctx.lu_work, ctx.factor_pool);
      for (int r = 0; r < options.newton_refine_steps; ++r) {
        ctx.lu.Refine(ctx.matrix, ctx.rhs, ctx.x_new, ctx.refine_work, ctx.lu_work);
      }
    }

    // Damped update (rescue ladder): pull the full Newton step back toward
    // the current iterate.  The convergence norm below then measures the
    // damped update, so convergence still means "the iterate stopped moving".
    if (inputs.damping < 1.0) {
      for (int i = 0; i < n; ++i) {
        ctx.x_new[i] = ctx.x[i] + inputs.damping * (ctx.x_new[i] - ctx.x[i]);
      }
    }

    // Weighted max-norm convergence test (SPICE-style).
    double worst = 0.0;
    bool finite = true;
    for (int i = 0; i < n; ++i) {
      const double xn = ctx.x_new[i];
      if (!std::isfinite(xn)) {
        finite = false;
        break;
      }
      const double tol = options.reltol * std::max(std::abs(xn), std::abs(ctx.x[i])) +
                         (i < num_nodes ? options.vntol : options.abstol);
      worst = std::max(worst, std::abs(xn - ctx.x[i]) / tol);
    }
    if (!finite) {
      // Diverged; restart damping won't save an inf/NaN iterate.
      stats.converged = false;
      stats.final_delta = std::numeric_limits<double>::infinity();
      chord.Settle(false);
      return stats;
    }

    std::swap(ctx.x, ctx.x_new);
    stats.final_delta = worst;

    // Convergence: the weighted update is within tolerance.  Nonlinear
    // circuits normally need a confirming second pass (the first update away
    // from an arbitrary guess says nothing) — EXCEPT when the very first
    // update is already far inside tolerance: then the seed was the solution
    // (hot start), and demanding another iteration would make forward
    // pipelining's repair pass as expensive as a cold solve.  The chord
    // policy has the final say: a passing iterate computed through a stale
    // factor is only accepted when its trust gate holds.
    const bool hot_start_accept = worst <= 0.05;
    const bool confirmed =
        worst <= 1.0 &&
        (iter >= 1 || !ctx.circuit().is_nonlinear() || inputs.trusted_seed);
    if (chord.FinishIteration(worst, confirmed || hot_start_accept, stats)) {
      stats.converged = true;
      // ctx.state_now was evaluated at the pre-update iterate; refresh it at
      // the converged point unless the update was too small to matter.
      if (worst > 0.1) {
        try {
          EvalDevices(ctx, inputs, /*limit_valid=*/true, /*first_iteration=*/false);
        } catch (const SingularMatrixError&) {
          stats.converged = false;
          stats.singular = true;
          stats.final_delta = std::numeric_limits<double>::infinity();
          chord.Settle(false);
          return stats;
        }
      }
      chord.Settle(true);
      return stats;
    }
  }
  stats.converged = false;
  chord.Settle(false);
  return stats;
}

}  // namespace wavepipe::engine
