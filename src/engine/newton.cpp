#include "engine/newton.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/fault.hpp"

namespace wavepipe::engine {

SolveContext::SolveContext(const Circuit& circuit, const MnaStructure& structure)
    : matrix(structure.pattern()),
      rhs(static_cast<std::size_t>(structure.dimension()), 0.0),
      x(static_cast<std::size_t>(structure.dimension()), 0.0),
      x_new(static_cast<std::size_t>(structure.dimension()), 0.0),
      state_now(static_cast<std::size_t>(circuit.num_states()), 0.0),
      state_hist(static_cast<std::size_t>(circuit.num_states()), 0.0),
      limit_a(static_cast<std::size_t>(circuit.num_limit_slots()), 0.0),
      limit_b(static_cast<std::size_t>(circuit.num_limit_slots()), 0.0),
      circuit_(&circuit),
      structure_(&structure) {
  WP_ASSERT(circuit.finalized());
}

void EvalDevices(SolveContext& ctx, const NewtonInputs& inputs, bool limit_valid,
                 bool first_iteration) {
  if (ctx.assembler != nullptr) {
    // Delegated zero+stamp (e.g. colored conflict-free parallel assembly).
    ctx.assembler->Assemble(ctx, inputs, limit_valid, first_iteration);
  } else {
    ctx.matrix.ZeroValues();
    std::fill(ctx.rhs.begin(), ctx.rhs.end(), 0.0);

    devices::EvalContext eval;
    eval.time = inputs.time;
    eval.a0 = inputs.a0;
    eval.transient = inputs.transient;
    eval.first_iteration = first_iteration;
    eval.gmin = inputs.gmin;
    eval.source_scale = inputs.source_scale;
    eval.x = ctx.x;
    eval.jacobian_values = ctx.matrix.mutable_values();
    eval.rhs = ctx.rhs;
    eval.state_now = ctx.state_now;
    eval.state_hist = ctx.state_hist;
    eval.limit_prev = ctx.limit_a;
    eval.limit_now = ctx.limit_b;
    eval.limit_valid = limit_valid;

    for (const auto& device : ctx.circuit().devices()) device->Eval(eval);
  }

  // Fault site: a device model producing a non-finite entry.  The poisoned
  // RHS propagates through the linear solve into the iterate, where the
  // Newton loop's finite check classifies the point as divergent.
  if (WP_FAULT_POINT("device.eval_nan")) {
    ctx.rhs[0] = std::numeric_limits<double>::quiet_NaN();
  }

  // Gmin-stepping shunt: conductance from every node to ground.  Stamped
  // after devices so it can't be overwritten.
  if (inputs.gshunt > 0.0) {
    auto values = ctx.matrix.mutable_values();
    for (int slot : ctx.structure().node_diag_slots()) values[slot] += inputs.gshunt;
  }

  // Nodeset clamps (.ic): tie each listed node to its target voltage.
  if (inputs.nodeset_g > 0.0) {
    auto values = ctx.matrix.mutable_values();
    const auto& diag = ctx.structure().node_diag_slots();
    for (const auto& [node, volts] : inputs.nodesets) {
      if (node < 0 || node >= static_cast<int>(diag.size())) continue;  // voltages only
      values[diag[static_cast<std::size_t>(node)]] += inputs.nodeset_g;
      ctx.rhs[static_cast<std::size_t>(node)] += inputs.nodeset_g * volts;
    }
  }

  // The values just written to limit_b become "previous" for the next pass.
  std::swap(ctx.limit_a, ctx.limit_b);
}

NewtonStats SolveNewton(SolveContext& ctx, const NewtonInputs& inputs,
                        const SimOptions& options, int max_iterations) {
  const int n = ctx.structure().dimension();
  const int num_nodes = ctx.circuit().num_nodes();
  NewtonStats stats;

  // Fault site: Newton declares divergence without iterating.  Exercises
  // every step-shrink / rescue / abort path above this function.
  if (WP_FAULT_POINT("newton.converge")) return stats;

  bool limit_valid = false;
  for (int iter = 0; iter < max_iterations; ++iter) {
    stats.iterations = iter + 1;
    ++ctx.total_newton_iterations;

    EvalDevices(ctx, inputs, limit_valid, iter == 0);
    limit_valid = true;

    const auto before_factor = ctx.lu.stats().factor_count;
    const auto before_refactor = ctx.lu.stats().refactor_count;
    try {
      ctx.lu.FactorOrRefactor(ctx.matrix, ctx.factor_pool);
    } catch (const SingularMatrixError&) {
      // A singular pivot at this trial point is reported as a failed solve,
      // not an unwound simulation: the caller shrinks the step or climbs the
      // rescue ladder, both of which change the Jacobian it will retry with.
      stats.converged = false;
      stats.singular = true;
      stats.final_delta = std::numeric_limits<double>::infinity();
      return stats;
    }
    stats.lu_full_factors += static_cast<int>(ctx.lu.stats().factor_count - before_factor);
    stats.lu_refactors += static_cast<int>(ctx.lu.stats().refactor_count - before_refactor);

    std::copy(ctx.rhs.begin(), ctx.rhs.end(), ctx.x_new.begin());
    ctx.lu.SolveParallel(ctx.x_new, ctx.lu_work, ctx.factor_pool);
    for (int r = 0; r < options.newton_refine_steps; ++r) {
      ctx.lu.Refine(ctx.matrix, ctx.rhs, ctx.x_new, ctx.refine_work, ctx.lu_work);
    }

    // Damped update (rescue ladder): pull the full Newton step back toward
    // the current iterate.  The convergence norm below then measures the
    // damped update, so convergence still means "the iterate stopped moving".
    if (inputs.damping < 1.0) {
      for (int i = 0; i < n; ++i) {
        ctx.x_new[i] = ctx.x[i] + inputs.damping * (ctx.x_new[i] - ctx.x[i]);
      }
    }

    // Weighted max-norm convergence test (SPICE-style).
    double worst = 0.0;
    bool finite = true;
    for (int i = 0; i < n; ++i) {
      const double xn = ctx.x_new[i];
      if (!std::isfinite(xn)) {
        finite = false;
        break;
      }
      const double tol = options.reltol * std::max(std::abs(xn), std::abs(ctx.x[i])) +
                         (i < num_nodes ? options.vntol : options.abstol);
      worst = std::max(worst, std::abs(xn - ctx.x[i]) / tol);
    }
    if (!finite) {
      // Diverged; restart damping won't save an inf/NaN iterate.
      stats.converged = false;
      stats.final_delta = std::numeric_limits<double>::infinity();
      return stats;
    }

    std::swap(ctx.x, ctx.x_new);
    stats.final_delta = worst;
    // Convergence: the weighted update is within tolerance.  Nonlinear
    // circuits normally need a confirming second pass (the first update away
    // from an arbitrary guess says nothing) — EXCEPT when the very first
    // update is already far inside tolerance: then the seed was the solution
    // (hot start), and demanding another iteration would make forward
    // pipelining's repair pass as expensive as a cold solve.
    const bool hot_start_accept = worst <= 0.05;
    const bool confirmed =
        worst <= 1.0 &&
        (iter >= 1 || !ctx.circuit().is_nonlinear() || inputs.trusted_seed);
    if (confirmed || hot_start_accept) {
      stats.converged = true;
      // ctx.state_now was evaluated at the pre-update iterate; refresh it at
      // the converged point unless the update was too small to matter.
      if (worst > 0.1) {
        EvalDevices(ctx, inputs, /*limit_valid=*/true, /*first_iteration=*/false);
      }
      return stats;
    }
  }
  stats.converged = false;
  return stats;
}

}  // namespace wavepipe::engine
