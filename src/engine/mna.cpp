#include "engine/mna.hpp"

#include "engine/circuit.hpp"
#include "sparse/triplet.hpp"
#include "util/error.hpp"

namespace wavepipe::engine {
namespace {

/// Pass 1: records coordinates, returns placeholder slots.
class CollectingPatternBuilder final : public devices::PatternBuilder {
 public:
  explicit CollectingPatternBuilder(sparse::TripletBuilder& builder) : builder_(builder) {}

  int Entry(int row, int col) override {
    if (row < 0 || col < 0) return -1;  // ground row/col: discarded
    builder_.AddPattern(row, col);
    return -1;
  }

 private:
  sparse::TripletBuilder& builder_;
};

/// Pass 2: resolves coordinates against the final CSC pattern.
class ResolvingPatternBuilder final : public devices::PatternBuilder {
 public:
  explicit ResolvingPatternBuilder(const sparse::CscMatrix& pattern) : pattern_(pattern) {}

  int Entry(int row, int col) override {
    if (row < 0 || col < 0) return -1;
    const int slot = pattern_.FindEntry(row, col);
    WP_ASSERT(slot >= 0);  // pass 1 must have declared it
    return slot;
  }

 private:
  const sparse::CscMatrix& pattern_;
};

}  // namespace

MnaStructure::MnaStructure(const Circuit& circuit) {
  WP_ASSERT(circuit.finalized());
  dimension_ = circuit.num_unknowns();

  sparse::TripletBuilder builder(dimension_, dimension_);
  // Every node diagonal is structural: gmin stepping and the gmin shunts
  // need a slot there even when no device stamps it.
  for (int i = 0; i < circuit.num_nodes(); ++i) builder.AddPattern(i, i);

  CollectingPatternBuilder collect(builder);
  for (const auto& device : circuit.devices()) device->DeclarePattern(collect);
  pattern_ = builder.ToCsc();
  pattern_.ZeroValues();

  ResolvingPatternBuilder resolve(pattern_);
  for (const auto& device : circuit.devices()) device->DeclarePattern(resolve);

  node_diag_slots_.resize(static_cast<std::size_t>(circuit.num_nodes()));
  for (int i = 0; i < circuit.num_nodes(); ++i) {
    const int slot = pattern_.FindEntry(i, i);
    WP_ASSERT(slot >= 0);
    node_diag_slots_[static_cast<std::size_t>(i)] = slot;
  }
}

}  // namespace wavepipe::engine
