// Variable-step implicit integration coefficients.
//
// Every dynamic device hands its charge/flux q to the engine and receives
// dq/dt ≈ a0·q_new + hist, where hist collects the method's dependence on
// past accepted points:
//
//   backward Euler:  dq/dt = (q_new − q_n) / h
//   trapezoidal:     dq/dt = 2(q_new − q_n)/h − qdot_n
//   Gear-2 (BDF2), variable step with r = h/h_prev:
//                    dq/dt = a0·q_new + a1·q_n + a2·q_{n−1}
//                    a0 = (1+2r)/(h(1+r)),  a1 = −(1+r)/h,  a2 = r²/(h(1+r))
//
// The requested method degrades gracefully when history is short: Gear-2
// needs two past points and falls back to backward Euler on the first step.
#pragma once

#include <span>

#include "engine/history.hpp"
#include "engine/options.hpp"

namespace wavepipe::engine {

struct IntegrationPlan {
  Method effective_method = Method::kBackwardEuler;  ///< after degradation
  int order = 1;
  double a0 = 0.0;
  double h = 0.0;  ///< t_new − newest history time
};

/// Builds the coefficient a0 and fills `state_hist` (one entry per device
/// state) for a step from the newest point of `window` to `t_new`.
/// `window` must be time-ascending with at least one point, and
/// t_new > window.back()->time.
IntegrationPlan PlanIntegration(Method requested, double t_new, const HistoryWindow& window,
                                std::span<double> state_hist);

/// Computes qdot at the new point for every state, given the plan used to
/// solve it:  qdot = a0·q_new + hist.  Stored into the accepted point so the
/// trapezoidal rule can consume it on the next step.
void ComputeQdot(const IntegrationPlan& plan, std::span<const double> q_new,
                 std::span<const double> state_hist, std::span<double> qdot_out);

}  // namespace wavepipe::engine
