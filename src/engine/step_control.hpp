// Predictor and LTE-based step-size control.
//
// The controller is the heart of both serial SPICE and WavePipe's backward
// pipelining, so its contract is spelled out precisely:
//
//  * Before a solve, the solution at the new time is PREDICTED by polynomial
//    extrapolation (divided differences) through the newest history points.
//    The prediction doubles as the Newton initial guess.
//
//  * After the solve, the local truncation error is estimated from the
//    predictor–corrector difference:  err = WRMS(x − x̂) / trtol, with
//    SPICE-style weights reltol·|x| + abstol.  err ≤ 1 accepts the step.
//
//  * The next step size follows the classic optimal-step rule
//      h_next = h · safety · err^(−1/(order+1))
//    clamped to [min_shrink·h, growth_cap·h].  The growth cap exists because
//    the divided-difference derivative estimate behind `err` loses accuracy
//    when consecutive steps differ wildly — THE hook WavePipe's backward
//    pipelining exploits: an extra solution point close behind the leading
//    edge keeps the estimate trustworthy over a longer extrapolation range,
//    so the cap can be raised (see wavepipe/bwp.hpp).
#pragma once

#include <span>

#include "engine/history.hpp"
#include "engine/options.hpp"

namespace wavepipe::engine {

/// Extrapolates x(t_new) through the newest `points` history entries.
/// points is clamped to window size.
void PredictSolution(const HistoryWindow& window, int points, double t_new,
                     std::span<double> out);

/// Same extrapolation over any per-point vector field (x, q, qdot).  Forward
/// pipelining uses this to fabricate the predicted history point a
/// speculative solve integrates from.
void PredictField(const HistoryWindow& window, int points, double t_new,
                  const std::vector<double> SolutionPoint::*field, std::span<double> out);

/// Fabricates a complete predicted SolutionPoint at t_new (x, q, qdot all
/// extrapolated).  Marked auxiliary.
SolutionPointPtr PredictPoint(const HistoryWindow& window, int points, double t_new);

struct StepAssessment {
  bool accept = false;
  double error = 0.0;   ///< normalized LTE estimate (accept iff <= 1)
  double h_next = 0.0;  ///< recommended next step (after accept OR reject)
};

struct StepControlParams {
  double reltol = 1e-3;
  double vntol = 1e-6;
  double abstol = 1e-12;
  double trtol = 7.0;
  double safety = 0.9;
  double growth_cap = 2.0;   ///< gamma; raised by backward pipelining
  double min_shrink = 0.1;
  double reject_shrink = 0.5;
  int order = 2;
  int num_nodes = 0;  ///< unknowns below this index use vntol, others abstol
  /// Restrict the LTE / prediction-distance norm to the first
  /// `norm_unknowns` entries (-1 = all).  The engine sets this to the node
  /// count: branch currents of voltage-source-like elements are algebraic,
  /// derivative-coupled unknowns whose solved value is inconsistent with
  /// extrapolated history by O(LTE/h) — including them pins the error
  /// estimate above 1 at any step size.  Classic SPICE likewise excludes
  /// source currents from truncation-error control.
  int norm_unknowns = -1;
};

/// Assesses a solved candidate against its prediction.  `h` is the step that
/// produced the candidate.  When `lte_active` is false (first step after DC
/// or a breakpoint, where no meaningful predictor exists) the step is
/// accepted unconditionally and h_next grows by the cap.
StepAssessment AssessStep(std::span<const double> solved, std::span<const double> predicted,
                          double h, bool lte_active, const StepControlParams& params);

/// Weighted RMS distance between two solution vectors using the same weight
/// recipe as the LTE test; used by FWP prediction validation and by the
/// accuracy benches.
double SolutionWrmsDistance(std::span<const double> a, std::span<const double> b,
                            const StepControlParams& params);

}  // namespace wavepipe::engine
