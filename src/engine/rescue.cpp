#include "engine/rescue.hpp"

#include <cmath>
#include <string>

#include "util/error.hpp"
#include "util/log.hpp"

namespace wavepipe::engine {
namespace {

/// One guarded solve attempt: any recoverable engine error (a genuine or
/// injected exception escaping the solver stack) is folded into a
/// non-converged result so the ladder can keep climbing.
StepSolveResult TrySolve(SolveContext& ctx, const HistoryWindow& window, double t_new,
                         const SimOptions& options, std::span<const double> seed_x,
                         const SolveOverrides& overrides) {
  try {
    return SolveTimePoint(ctx, window, t_new, options.method, /*restart=*/true, options,
                          seed_x, overrides);
  } catch (const Error& error) {
    StepSolveResult failed;
    failed.converged = false;
    failed.failure = error.what();
    return failed;
  }
}

void Append(std::string& log, const std::string& entry) {
  if (!log.empty()) log += ", ";
  log += entry;
}

}  // namespace

RescueOutcome AttemptRescue(SolveContext& ctx, const HistoryWindow& window, double t_new,
                            const SimOptions& options, TransientStats& stats) {
  RescueOutcome outcome;
  const RescueOptions& rescue = options.rescue;
  if (!rescue.enabled) {
    outcome.attempts = "rescue ladder disabled";
    return outcome;
  }
  WP_ASSERT(!window.empty() && t_new > window.back()->time);

  auto succeed = [&](RescueRung rung, StepSolveResult solve) {
    stats.rescues_succeeded[static_cast<int>(rung)] += 1;
    outcome.rescued = true;
    outcome.rung = rung;
    outcome.solve = std::move(solve);
    Append(outcome.attempts, std::string(RescueRungName(rung)) + " (" +
                                 std::to_string(outcome.solve.newton.iterations) +
                                 " iters, converged)");
  };

  // ---- rung 1: backward-Euler restart --------------------------------------
  {
    stats.rescues_attempted[static_cast<int>(RescueRung::kBackwardEuler)] += 1;
    SolveOverrides overrides;
    overrides.max_iters_scale = rescue.max_iters_scale;
    StepSolveResult solve = TrySolve(ctx, window, t_new, options, {}, overrides);
    if (solve.converged) {
      succeed(RescueRung::kBackwardEuler, std::move(solve));
      return outcome;
    }
    Append(outcome.attempts, "be-restart (" + std::to_string(solve.newton.iterations) +
                                 " iters)");
  }

  // ---- rung 2: damped Newton -----------------------------------------------
  {
    stats.rescues_attempted[static_cast<int>(RescueRung::kDampedNewton)] += 1;
    double damping = rescue.damping;
    for (int attempt = 0; attempt < rescue.damped_attempts; ++attempt) {
      SolveOverrides overrides;
      overrides.damping = damping;
      overrides.max_iters_scale = rescue.max_iters_scale;
      StepSolveResult solve = TrySolve(ctx, window, t_new, options, {}, overrides);
      if (solve.converged) {
        succeed(RescueRung::kDampedNewton, std::move(solve));
        return outcome;
      }
      Append(outcome.attempts,
             "damped-newton d=" + std::to_string(damping) + " (" +
                 std::to_string(solve.newton.iterations) + " iters)");
      damping *= rescue.damping;
    }
  }

  // ---- rung 3: gshunt continuation ramp ------------------------------------
  {
    stats.rescues_attempted[static_cast<int>(RescueRung::kGshuntRamp)] += 1;
    double gshunt = rescue.gshunt_start;
    std::vector<double> seed;  // empty for the first (most-shunted) stage
    bool ramp_ok = true;
    int stage = 0;
    for (; stage < rescue.gshunt_stages; ++stage) {
      SolveOverrides overrides;
      overrides.gshunt = gshunt;
      overrides.max_iters_scale = rescue.max_iters_scale;
      StepSolveResult solve = TrySolve(ctx, window, t_new, options, seed, overrides);
      if (!solve.converged) {
        ramp_ok = false;
        break;
      }
      seed = ctx.x;  // the shunted solution seeds the next, weaker stage
      gshunt /= 10.0;
    }
    if (ramp_ok) {
      SolveOverrides overrides;
      overrides.max_iters_scale = rescue.max_iters_scale;
      StepSolveResult solve = TrySolve(ctx, window, t_new, options, seed, overrides);
      if (solve.converged) {
        succeed(RescueRung::kGshuntRamp, std::move(solve));
        return outcome;
      }
      Append(outcome.attempts, "gshunt-ramp (release solve failed after " +
                                   std::to_string(rescue.gshunt_stages) + " stages)");
    } else {
      Append(outcome.attempts,
             "gshunt-ramp (stage " + std::to_string(stage + 1) + "/" +
                 std::to_string(rescue.gshunt_stages) + " failed)");
    }
  }

  WP_DEBUG << "rescue: ladder exhausted at t=" << t_new << " (" << outcome.attempts << ")";
  return outcome;
}

}  // namespace wavepipe::engine
