// Durable runs: the engine-level resilience substrate.
//
//  * TransientCheckpoint  — the complete resumable state of a transient run
//    (history ring, step control, accepted trace, stats, pipeline scheduler
//    state), serialized to the `wavepipe.ckpt.v1` format of
//    util/checkpoint.hpp.  A run resumed from a checkpoint taken at an
//    accepted-step (serial/fine-grained) or round (pipeline) boundary
//    continues bit-identically: those boundaries are exactly the points where
//    no speculative or in-flight solver state exists, so the snapshot is the
//    whole truth.
//
//  * CheckpointSink       — cadence + atomic double-buffered publication.
//  * RunBudget            — --max-wall/--max-steps/--max-newton-total
//    governor; exhaustion checkpoints then aborts structurally
//    (abort_reason starts with kBudgetExhausted).
//  * StallWatchdog        — monitor thread over cheap heartbeat counters;
//    no-progress intervals escalate checkpoint -> abort.
//  * BreakerBoard         — per-feature circuit-breakers that degrade a
//    misbehaving accelerated path (chord, bypass, partition, parallel
//    factor/assembly) to the bit-identical monolithic serial path, with a
//    half-open re-probe after a cooldown.
//
// Everything is a strict no-op unless the corresponding ResilienceOptions
// field engages it — the default run spawns no threads, writes no files, and
// stays bit-identical to historical behavior.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "engine/options.hpp"
#include "engine/resilience_stats.hpp"
#include "engine/transient.hpp"
#include "util/timer.hpp"

namespace wavepipe::engine {

// ---------------------------------------------------------------------------
// TransientCheckpoint — the resumable state
// ---------------------------------------------------------------------------

/// One history point plus its pipeline ledger id (-1 outside the pipeline).
struct CheckpointPoint {
  double time = 0.0;
  std::vector<double> x;
  std::vector<double> q;
  std::vector<double> qdot;
  bool auxiliary = false;
  std::int64_t ledger_id = -1;
};

/// A pipeline ledger record, flattened for serialization (the engine layer
/// carries it opaquely; src/wavepipe packs and unpacks it).
struct CheckpointLedgerRecord {
  std::int64_t id = -1;
  std::uint8_t kind = 0;
  double time_point = 0.0;
  double seconds = 0.0;
  std::int64_t newton_iterations = 0;
  bool useful = true;
  std::vector<std::int64_t> deps;
};

/// Replay seeds of one pipeline SolveContext slot (see FactorSeeds).
struct CheckpointContextSeeds {
  std::vector<double> lu_full;
  std::vector<double> lu_numeric;
  std::vector<double> bbd_full;
  std::vector<double> bbd_numeric;
};

struct TransientCheckpoint {
  // --- run fingerprint: a resume refuses to continue a DIFFERENT run -------
  std::string engine;   ///< "serial" | "fine-grained" | "pipeline"
  std::string scheme;   ///< pipeline scheme name; empty otherwise
  std::int64_t partition_pieces = 0;
  std::uint64_t num_unknowns = 0;
  std::uint64_t num_probes = 0;
  double tstop = 0.0;

  // --- step control at the snapshot boundary -------------------------------
  double h = 0.0;
  bool restart = true;
  std::uint64_t steps_since_restart = 0;
  std::uint64_t floor_streak = 0;
  std::uint64_t next_breakpoint = 0;  ///< index into the breakpoint schedule

  // --- pipeline driver extras (zero/defaulted for the other engines) -------
  double last_leading_time = 0.0;
  std::uint64_t bwp_cooldown = 0;
  std::uint64_t consecutive_failures = 0;
  std::uint64_t quarantine_rounds_left = 0;
  double last_growth_factor = 1.0;
  double avg_lead_iters = 0.0;
  double avg_repair_iters = 0.0;
  std::uint64_t repair_samples = 0;
  /// Scheduler/speculation-policy counters, packed by the pipeline driver
  /// (engine-opaque; counts first, then EWMA-style doubles).
  std::vector<std::uint64_t> sched_u64;
  std::vector<double> sched_f64;
  std::vector<CheckpointLedgerRecord> ledger;

  // --- solution state -------------------------------------------------------
  std::vector<CheckpointPoint> history;  ///< ascending time, newest last
  TransientStats stats;  ///< includes solver stats absorbed AT the snapshot
  std::vector<StepRecord> steps;

  // --- accepted trace -------------------------------------------------------
  std::vector<double> trace_times;
  std::vector<double> trace_values;  ///< row-major sample x probe

  // --- linear-solver replay seeds (see FactorSeeds in engine/newton.hpp) ---
  // Empty when the corresponding solver never factored.  Replayed at resume
  // so the first post-resume solve REFACTORS exactly like the uninterrupted
  // run instead of full-factoring with a different summation order.
  std::vector<double> lu_seed_full;
  std::vector<double> lu_seed_numeric;
  std::vector<double> bbd_seed_full;
  std::vector<double> bbd_seed_numeric;
  /// Per-context replay seeds for the pipeline engine (one block per
  /// SolveContext slot — each slot keeps its own LU/BBD numeric state, and
  /// bit-identity needs every slot to refactor post-resume exactly as the
  /// uninterrupted run would have).  Empty for the single-context engines,
  /// which use the flat fields above.
  std::vector<CheckpointContextSeeds> context_seeds;

  /// Generation of the slot this checkpoint was loaded from (resume only);
  /// the resumed run's sink continues at resume_generation + 1.
  std::uint64_t resume_generation = 0;
};

/// Payload (de)serialization for util/checkpoint.hpp.  Deserialize throws
/// util::CheckpointError on any truncation or malformed field.
std::vector<std::uint8_t> SerializeCheckpoint(const TransientCheckpoint& ckpt);
TransientCheckpoint DeserializeCheckpoint(std::span<const std::uint8_t> payload);

/// Loads the newest valid generation at `path_base` and deserializes it.
TransientCheckpoint LoadCheckpoint(const std::string& path_base);

/// Verifies a resume checkpoint matches the run being started (engine,
/// scheme, partitioning, dimensions, horizon); throws util::CheckpointError
/// with a field-by-field message on mismatch.
void ValidateResume(const TransientCheckpoint& ckpt, const std::string& engine,
                    const std::string& scheme, std::int64_t partition_pieces,
                    std::uint64_t num_unknowns, std::uint64_t num_probes,
                    double tstop);

// ---------------------------------------------------------------------------
// CheckpointSink — cadence + publication
// ---------------------------------------------------------------------------

class CheckpointSink {
 public:
  CheckpointSink(const ResilienceOptions& options, ResilienceStats& stats);

  bool enabled() const { return !path_.empty(); }

  /// Publishes a snapshot when the step- or wall-cadence says so.  The
  /// serializer runs only when a write is due.  Write failures (including
  /// the injected ckpt.write fault) are counted, never fatal — losing a
  /// checkpoint must not lose the run.
  void MaybeWrite(std::uint64_t accepted_steps,
                  const std::function<std::vector<std::uint8_t>()>& serialize);

  /// Unconditional best-effort snapshot (budget/watchdog aborts, run end).
  void WriteFinal(const std::function<std::vector<std::uint8_t>()>& serialize);

 private:
  void Write(const std::function<std::vector<std::uint8_t>()>& serialize);

  std::string path_;
  std::uint64_t every_steps_;
  double every_seconds_;
  std::uint64_t generation_;
  std::uint64_t last_write_steps_ = 0;
  util::WallTimer since_last_write_;
  ResilienceStats& stats_;
};

// ---------------------------------------------------------------------------
// RunBudget — the governor
// ---------------------------------------------------------------------------

/// Structured-abort reason prefix for governor stops.
inline constexpr const char* kBudgetExhausted = "budget exhausted";

class RunBudget {
 public:
  explicit RunBudget(const ResilienceOptions& options)
      : max_wall_(options.max_wall_seconds),
        max_steps_(options.max_steps),
        max_newton_(options.max_newton_total) {}

  bool enabled() const { return max_wall_ > 0 || max_steps_ > 0 || max_newton_ > 0; }

  /// Empty when within budget; otherwise the full abort_reason string.
  std::string Exceeded(std::uint64_t accepted_steps, std::uint64_t newton_total,
                       double wall_seconds) const;

 private:
  double max_wall_;
  std::uint64_t max_steps_;
  std::uint64_t max_newton_;
};

// ---------------------------------------------------------------------------
// StallWatchdog
// ---------------------------------------------------------------------------

/// Monitor thread sampling registered heartbeat counters every
/// watchdog_interval_seconds.  When the sum stops advancing for
/// watchdog_stall_intervals consecutive samples (or the `watchdog.stall`
/// fault fires), the stall is recorded (counter + lane-annotated trace
/// instant) and the escalation flag raises; the engine polls it at step/round
/// boundaries and turns it into checkpoint -> structured abort.  The thread
/// only ever touches its own atomics — Finish() folds them into
/// ResilienceStats after Stop().
class StallWatchdog {
 public:
  StallWatchdog(const ResilienceOptions& options, ResilienceStats& stats);
  ~StallWatchdog();

  bool enabled() const { return enabled_; }

  /// Registers a heartbeat source.  All sources must outlive the watchdog;
  /// call before Start().
  void AddSource(const std::atomic<std::uint64_t>* beat);

  void Start();
  void Stop();
  /// Stop() + fold the monitor thread's counts into ResilienceStats.
  void Finish();

  /// True once a stall has persisted past the escalation threshold.
  bool ShouldAbort() const { return escalate_.load(std::memory_order_acquire); }

  /// The structured abort reason for an escalated stall.
  std::string AbortReason() const;

 private:
  void Loop();
  std::uint64_t SampleSum() const;

  bool enabled_;
  double interval_seconds_;
  int stall_intervals_;
  std::vector<const std::atomic<std::uint64_t>*> sources_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<bool> escalate_{false};
  ResilienceStats& stats_;
};

// ---------------------------------------------------------------------------
// BreakerBoard — feature circuit-breakers
// ---------------------------------------------------------------------------

/// Per-feature breaker: closed -> (K consecutive attributed failures, or the
/// `breaker.trip` fault) -> open for a cooldown of accepted steps -> half-open
/// re-probe -> closed on success / re-open with doubled cooldown on failure.
/// Failure and latency EWMAs are maintained as diagnostics; tripping is
/// driven by the deterministic consecutive-failure count so that identical
/// runs trip identically.
class BreakerBoard {
 public:
  BreakerBoard(const ResilienceOptions& options, ResilienceStats& stats);

  bool enabled() const { return enabled_; }

  /// Records one solve outcome.  `active_mask` has bit (1 << Feature) set for
  /// every feature that participated in the solve; failures are attributed to
  /// all of them.  Returns a mask of features whose breaker JUST tripped —
  /// the engine must degrade those paths before the next solve.
  std::uint64_t OnSolveOutcome(std::uint64_t active_mask, bool converged,
                               double seconds);

  /// Cooldown tick.  Returns a mask of features whose breaker moved to
  /// half-open — the engine re-enables them for one probe window.
  std::uint64_t OnAcceptedStep();

  bool IsOpen(Feature feature) const {
    return breakers_[static_cast<int>(feature)].state == State::kOpen;
  }

  double FailureEwma(Feature feature) const {
    return breakers_[static_cast<int>(feature)].failure_ewma;
  }
  double LatencyEwma(Feature feature) const {
    return breakers_[static_cast<int>(feature)].latency_ewma;
  }

 private:
  enum class State { kClosed, kOpen, kHalfOpen };
  struct Breaker {
    State state = State::kClosed;
    int consecutive_failures = 0;
    std::uint64_t cooldown_left = 0;
    std::uint64_t trips = 0;
    double failure_ewma = 0.0;
    double latency_ewma = 0.0;
  };

  void Trip(Breaker& breaker, Feature feature);

  bool enabled_;
  int trip_threshold_;
  std::uint64_t cooldown_steps_;
  std::array<Breaker, kNumFeatures> breakers_{};
  ResilienceStats& stats_;
};

}  // namespace wavepipe::engine
