#include "engine/integrator.hpp"

#include "util/error.hpp"

namespace wavepipe::engine {

IntegrationPlan PlanIntegration(Method requested, double t_new, const HistoryWindow& window,
                                std::span<double> state_hist) {
  WP_ASSERT(!window.empty());
  const SolutionPoint& newest = *window.back();
  const double h = t_new - newest.time;
  WP_ASSERT(h > 0.0);
  WP_ASSERT(state_hist.size() == newest.q.size());

  IntegrationPlan plan;
  plan.h = h;

  Method method = requested;
  if (method == Method::kGear2) {
    // Gear-2 needs at least one non-auxiliary point before the newest.
    bool have_prev = false;
    for (std::size_t i = 0; i + 1 < window.size(); ++i) {
      have_prev |= !window[i]->auxiliary;
    }
    if (!have_prev) method = Method::kBackwardEuler;
  }
  plan.effective_method = method;
  plan.order = MethodOrder(method);

  switch (method) {
    case Method::kBackwardEuler: {
      plan.a0 = 1.0 / h;
      for (std::size_t s = 0; s < state_hist.size(); ++s) {
        state_hist[s] = -newest.q[s] / h;
      }
      break;
    }
    case Method::kTrapezoidal: {
      plan.a0 = 2.0 / h;
      for (std::size_t s = 0; s < state_hist.size(); ++s) {
        state_hist[s] = -2.0 * newest.q[s] / h - newest.qdot[s];
      }
      break;
    }
    case Method::kGear2: {
      // Skip auxiliary (backward-pipelined) points: see SolutionPoint docs.
      const SolutionPoint* prev_ptr = nullptr;
      for (std::size_t i = window.size() - 1; i-- > 0;) {
        if (!window[i]->auxiliary) {
          prev_ptr = window[i].get();
          break;
        }
      }
      if (prev_ptr == nullptr) prev_ptr = window[window.size() - 2].get();
      const SolutionPoint& prev = *prev_ptr;
      const double h_prev = newest.time - prev.time;
      WP_ASSERT(h_prev > 0.0);
      const double r = h / h_prev;
      const double a0 = (1 + 2 * r) / (h * (1 + r));
      const double a1 = -(1 + r) / h;  // times (1+r)/h... coefficient of q_n
      const double a2 = r * r / (h * (1 + r));
      plan.a0 = a0;
      for (std::size_t s = 0; s < state_hist.size(); ++s) {
        state_hist[s] = a1 * newest.q[s] + a2 * prev.q[s];
      }
      break;
    }
  }
  return plan;
}

void ComputeQdot(const IntegrationPlan& plan, std::span<const double> q_new,
                 std::span<const double> state_hist, std::span<double> qdot_out) {
  WP_ASSERT(q_new.size() == state_hist.size());
  WP_ASSERT(q_new.size() == qdot_out.size());
  for (std::size_t s = 0; s < q_new.size(); ++s) {
    qdot_out[s] = plan.a0 * q_new[s] + state_hist[s];
  }
}

}  // namespace wavepipe::engine
