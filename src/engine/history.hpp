// Solution history: the time-ordered set of accepted solution points that
// integrators, predictors, and the LTE controller consume.
//
// Points are immutable once accepted and are shared by shared_ptr so that
// WavePipe worker threads can snapshot a window of history without copying
// full solution vectors (the snapshot stays valid even if the shared history
// advances concurrently).
#pragma once

#include <algorithm>
#include <deque>
#include <memory>
#include <vector>

#include "util/error.hpp"

namespace wavepipe::engine {

/// One accepted transient solution.
struct SolutionPoint {
  double time = 0.0;
  std::vector<double> x;     ///< all unknowns (node voltages, branch currents)
  std::vector<double> q;     ///< device charges/fluxes
  std::vector<double> qdot;  ///< dq/dt under the method that produced the point
  /// True for backward-pipelined intermediate points.  They are full-accuracy
  /// solutions and participate in predictors and LTE estimation, but Gear-2
  /// skips them when picking its two-step q-history: the very uneven step
  /// ratio they induce would push variable-step BDF2 out of its zero-stable
  /// range (r <= 1 + sqrt(2)).
  bool auxiliary = false;
};

using SolutionPointPtr = std::shared_ptr<const SolutionPoint>;

/// A time-ascending window of history points handed to a solve task.
using HistoryWindow = std::vector<SolutionPointPtr>;

/// Bounded, time-sorted container of accepted points.  Backward-pipelined
/// points arrive out of order, hence sorted insertion rather than append.
class History {
 public:
  explicit History(int max_depth = 8) : max_depth_(max_depth) { WP_ASSERT(max_depth >= 2); }

  void Add(SolutionPointPtr point) {
    WP_ASSERT(point != nullptr);
    const auto pos = std::upper_bound(
        points_.begin(), points_.end(), point->time,
        [](double t, const SolutionPointPtr& p) { return t < p->time; });
    points_.insert(pos, std::move(point));
    while (static_cast<int>(points_.size()) > max_depth_) points_.pop_front();
  }

  int size() const { return static_cast<int>(points_.size()); }
  bool empty() const { return points_.empty(); }

  /// Most recent point (largest time).
  const SolutionPointPtr& newest() const {
    WP_ASSERT(!points_.empty());
    return points_.back();
  }
  double newest_time() const { return newest()->time; }

  /// age = 0 is the newest point, age = 1 the one before it, ...
  const SolutionPointPtr& FromNewest(int age) const {
    WP_ASSERT(age >= 0 && age < size());
    return points_[points_.size() - 1 - static_cast<std::size_t>(age)];
  }

  /// The `count` newest points in ascending time order (fewer if not
  /// available).  This is the snapshot handed to solve tasks.
  HistoryWindow Window(int count) const {
    const int n = std::min(count, size());
    HistoryWindow window;
    window.reserve(static_cast<std::size_t>(n));
    for (int i = n - 1; i >= 0; --i) window.push_back(FromNewest(i));
    return window;
  }

  void Clear() { points_.clear(); }

 private:
  int max_depth_;
  std::deque<SolutionPointPtr> points_;  // ascending time
};

}  // namespace wavepipe::engine
