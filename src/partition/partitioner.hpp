// Netlist graph partitioner producing BBD plans.
//
// The matrix pattern is read as an undirected graph (unknowns = vertices,
// symmetrized off-diagonal entries = edges).  Partitioning runs in three
// deterministic stages:
//
//  1. BFS greedy growth: pieces are grown one at a time from the
//     lowest-numbered unassigned vertex until each reaches its target size
//     ceil(n / pieces); the last piece absorbs any remainder, and
//     disconnected graphs simply reseed.  Circuit node numbering follows
//     netlist locality, so BFS growth already yields compact pieces.
//  2. Boundary refinement: a few sweeps move vertices to the neighboring
//     piece holding the strict majority of their neighbors, subject to a
//     balance guard — classic cut smoothing without the KL/FM machinery.
//  3. One-sided vertex separator: for every edge still crossing pieces, the
//     endpoint in the HIGHER-numbered piece moves to the interface; a
//     thinning pass then returns interface vertices all of whose
//     non-interface neighbors live in one piece back to that piece.
//
// Every stage iterates vertices in ascending order with no tie randomness,
// so equal inputs give bit-identical plans on every run and thread count.
#pragma once

#include <cstddef>
#include <memory>

#include "sparse/bbd.hpp"

namespace wavepipe::sparse {
class CscMatrix;
}

namespace wavepipe::partition {

struct PartitionOptions {
  /// Requested piece count; clamped to [1, dimension].
  int pieces = 1;
  /// Boundary-smoothing sweeps between growth and separator extraction.
  int refine_passes = 2;
  /// A refinement move may not push the destination piece beyond
  /// balance_slack * ceil(n / pieces) vertices.
  double balance_slack = 1.10;
};

/// What the partitioner did — exported by callers that want to report cut
/// quality (the BBD solver re-derives interface size and imbalance itself).
struct PartitionTelemetry {
  std::size_t edge_cut_before = 0;  ///< cross-piece edges after growth
  std::size_t edge_cut_after = 0;   ///< cross-piece edges after refinement
  std::size_t interface_size = 0;   ///< separator vertices after thinning
  double imbalance = 1.0;           ///< largest piece / ideal piece size
};

/// Partitions the unknowns of `pattern` into a vertex-separator BBD plan.
/// Deterministic; never fails (degenerate requests clamp to sensible
/// plans — 1 piece means "everything interior, empty interface").
std::shared_ptr<const sparse::BbdPlan> PartitionPattern(
    const sparse::CscMatrix& pattern, const PartitionOptions& options,
    PartitionTelemetry* telemetry = nullptr);

/// Convenience overload: default options with `pieces` pieces.
std::shared_ptr<const sparse::BbdPlan> PartitionPattern(const sparse::CscMatrix& pattern,
                                                        int pieces);

}  // namespace wavepipe::partition
