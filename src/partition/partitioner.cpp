#include "partition/partitioner.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "sparse/csc.hpp"
#include "util/error.hpp"

namespace wavepipe::partition {
namespace {

// Symmetrized adjacency (CSR == CSC for a symmetric pattern), self-loops
// dropped: the undirected connectivity graph of the unknowns.
struct Adjacency {
  std::vector<int> ptr;
  std::vector<int> nbr;

  int degree(int v) const { return ptr[v + 1] - ptr[v]; }
  std::span<const int> neighbors(int v) const {
    return std::span<const int>(nbr).subspan(static_cast<std::size_t>(ptr[v]),
                                             static_cast<std::size_t>(degree(v)));
  }
};

Adjacency BuildAdjacency(const sparse::CscMatrix& pattern) {
  const sparse::CscMatrix sym = pattern.SymmetrizedPattern();
  Adjacency adj;
  const int n = sym.cols();
  adj.ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (int col = 0; col < n; ++col) {
    for (int k = sym.col_begin(col); k < sym.col_end(col); ++k) {
      if (sym.row_of(k) != col) ++adj.ptr[col + 1];
    }
  }
  for (int col = 0; col < n; ++col) adj.ptr[col + 1] += adj.ptr[col];
  adj.nbr.resize(static_cast<std::size_t>(adj.ptr[n]));
  std::vector<int> fill(adj.ptr.begin(), adj.ptr.end() - 1);
  for (int col = 0; col < n; ++col) {
    for (int k = sym.col_begin(col); k < sym.col_end(col); ++k) {
      const int row = sym.row_of(k);
      if (row != col) adj.nbr[fill[col]++] = row;
    }
  }
  return adj;
}

// Stage 1: grow pieces by BFS from the lowest unassigned vertex.  Piece k
// stops at its target size; the last piece absorbs the remainder (including
// any disconnected leftovers via reseeding).
std::vector<int> GrowPieces(const Adjacency& adj, int n, int pieces) {
  std::vector<int> piece_of(static_cast<std::size_t>(n), -1);
  const int target = (n + pieces - 1) / pieces;
  int next_seed = 0;
  for (int k = 0; k < pieces; ++k) {
    const bool last = (k == pieces - 1);
    int assigned = 0;
    std::deque<int> frontier;
    while (last || assigned < target) {
      if (frontier.empty()) {
        while (next_seed < n && piece_of[next_seed] != -1) ++next_seed;
        if (next_seed >= n) break;
        frontier.push_back(next_seed);
        piece_of[next_seed] = k;
        ++assigned;
        if (!last && assigned >= target) break;
      }
      const int v = frontier.front();
      frontier.pop_front();
      for (int w : adj.neighbors(v)) {
        if (piece_of[w] != -1) continue;
        piece_of[w] = k;
        ++assigned;
        frontier.push_back(w);
        if (!last && assigned >= target) break;
      }
      if (!last && assigned >= target) break;
    }
  }
  return piece_of;
}

std::size_t CountEdgeCut(const Adjacency& adj, const std::vector<int>& piece_of) {
  std::size_t cut = 0;
  for (int v = 0; v < static_cast<int>(piece_of.size()); ++v) {
    for (int w : adj.neighbors(v)) {
      if (w > v && piece_of[w] != piece_of[v]) ++cut;
    }
  }
  return cut;
}

// Stage 2: move each boundary vertex to the piece holding the strict
// majority of its neighbors, unless that piece is already at the balance
// cap.  Sequential ascending sweeps: deterministic, and each move is
// immediately visible to later vertices (Gauss–Seidel style smoothing).
void RefineBoundary(const Adjacency& adj, std::vector<int>& piece_of, int pieces,
                    int passes, double balance_slack) {
  const int n = static_cast<int>(piece_of.size());
  const int target = (n + pieces - 1) / pieces;
  const int cap = std::max(target, static_cast<int>(balance_slack * target));
  std::vector<int> sizes(static_cast<std::size_t>(pieces), 0);
  for (int p : piece_of) ++sizes[p];
  std::vector<int> tally(static_cast<std::size_t>(pieces), 0);
  for (int pass = 0; pass < passes; ++pass) {
    bool moved = false;
    for (int v = 0; v < n; ++v) {
      const int home = piece_of[v];
      if (sizes[home] <= 1) continue;  // never empty a piece
      bool boundary = false;
      for (int w : adj.neighbors(v)) {
        tally[piece_of[w]]++;
        if (piece_of[w] != home) boundary = true;
      }
      if (boundary) {
        int best = home;
        for (int p = 0; p < pieces; ++p) {
          // Strict improvement, lowest piece id wins ties deterministically.
          if (p != best && tally[p] > tally[best] && sizes[p] < cap) best = p;
        }
        if (best != home && tally[best] > tally[home]) {
          piece_of[v] = best;
          --sizes[home];
          ++sizes[best];
          moved = true;
        }
      }
      for (int w : adj.neighbors(v)) tally[piece_of[w]] = 0;
      tally[home] = 0;
      tally[piece_of[v]] = 0;
    }
    if (!moved) break;
  }
}

// Stage 3: one-sided vertex separator.  Marking only the higher-piece
// endpoint of each cross edge halves the separator a naive "both endpoints"
// rule would produce; the thinning sweep then reclaims interface vertices
// whose non-interface neighbors all agree on one piece.
void ExtractSeparator(const Adjacency& adj, std::vector<int>& piece_of) {
  const int n = static_cast<int>(piece_of.size());
  for (int v = 0; v < n; ++v) {
    if (piece_of[v] == sparse::BbdPlan::kInterface) continue;
    for (int w : adj.neighbors(v)) {
      const int pw = piece_of[w];
      if (pw == sparse::BbdPlan::kInterface || pw == piece_of[v]) continue;
      if (pw > piece_of[v]) {
        piece_of[w] = sparse::BbdPlan::kInterface;
      } else {
        piece_of[v] = sparse::BbdPlan::kInterface;
        break;
      }
    }
  }
  // Thinning: sequential ascending sweep, so a reclaimed vertex immediately
  // constrains later candidates — no two adjacent interface vertices can
  // both return to different pieces and break the separator property.
  for (int v = 0; v < n; ++v) {
    if (piece_of[v] != sparse::BbdPlan::kInterface) continue;
    int home = -2;  // -2: none seen yet
    for (int w : adj.neighbors(v)) {
      const int pw = piece_of[w];
      if (pw == sparse::BbdPlan::kInterface) continue;
      if (home == -2) {
        home = pw;
      } else if (home != pw) {
        home = -3;  // conflict: stays interface
        break;
      }
    }
    if (home >= 0) piece_of[v] = home;
  }
}

}  // namespace

std::shared_ptr<const sparse::BbdPlan> PartitionPattern(const sparse::CscMatrix& pattern,
                                                        const PartitionOptions& options,
                                                        PartitionTelemetry* telemetry) {
  WP_ASSERT(pattern.rows() == pattern.cols());
  const int n = pattern.cols();
  const int pieces = std::clamp(options.pieces, 1, std::max(n, 1));

  auto plan = std::make_shared<sparse::BbdPlan>();
  plan->num_pieces = pieces;
  plan->dimension = n;

  if (pieces <= 1 || n == 0) {
    // Trivial plan: one piece, everything interior, empty interface.
    plan->num_pieces = std::max(pieces, 1);
    plan->piece_of.assign(static_cast<std::size_t>(n), 0);
    plan->interiors.assign(1, {});
    plan->interiors[0].resize(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) plan->interiors[0][v] = v;
    plan->local_index = plan->interiors[0];
    if (telemetry != nullptr) *telemetry = PartitionTelemetry{};
    return plan;
  }

  const Adjacency adj = BuildAdjacency(pattern);
  std::vector<int> piece_of = GrowPieces(adj, n, pieces);
  const std::size_t cut_before = CountEdgeCut(adj, piece_of);
  RefineBoundary(adj, piece_of, pieces, options.refine_passes, options.balance_slack);
  const std::size_t cut_after = CountEdgeCut(adj, piece_of);
  ExtractSeparator(adj, piece_of);

  plan->piece_of = std::move(piece_of);
  plan->interiors.assign(static_cast<std::size_t>(pieces), {});
  plan->local_index.assign(static_cast<std::size_t>(n), -1);
  for (int v = 0; v < n; ++v) {
    const int p = plan->piece_of[v];
    if (p == sparse::BbdPlan::kInterface) {
      plan->local_index[v] = static_cast<int>(plan->interface_nodes.size());
      plan->interface_nodes.push_back(v);
    } else {
      plan->local_index[v] = static_cast<int>(plan->interiors[p].size());
      plan->interiors[p].push_back(v);
    }
  }

  if (telemetry != nullptr) {
    telemetry->edge_cut_before = cut_before;
    telemetry->edge_cut_after = cut_after;
    telemetry->interface_size = plan->interface_nodes.size();
    telemetry->imbalance = plan->Imbalance();
  }
  return plan;
}

std::shared_ptr<const sparse::BbdPlan> PartitionPattern(const sparse::CscMatrix& pattern,
                                                        int pieces) {
  PartitionOptions options;
  options.pieces = pieces;
  return PartitionPattern(pattern, options);
}

}  // namespace wavepipe::partition
