// Work ledger: a dependency-annotated record of every nonlinear solve a
// transient run performed, with its measured cost.
//
// This is the substitution for the paper's multi-core wall-clock measurement
// (see DESIGN.md): on a k-core machine the pipeline's runtime is the
// list-scheduled makespan of exactly these tasks under exactly these
// dependencies, so replaying the ledger on k virtual workers yields the
// hardware-independent speedup — while the real multi-threaded execution
// path (which this container cannot time meaningfully on one vCPU) is still
// exercised for correctness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wavepipe::pipeline {

enum class SolveKind {
  kDcop,         ///< operating point (sequential prologue)
  kLeading,      ///< ordinary leading-edge time-point solve
  kBackward,     ///< backward-pipelined auxiliary point
  kSpeculative,  ///< forward-pipelined solve on predicted history
  kRepair,       ///< hot-start correction of an accepted speculative solve
  kRejected,     ///< solve whose step was rejected (LTE or Newton)
  // Intra-solve tasks (finer grain than a whole nonlinear solve): the
  // virtual-time replay schedules these alongside the solve-level records so
  // modeled makespans cover colored assembly and level-scheduled
  // refactorization too (see virtual_pipeline.hpp).
  kAssembly,      ///< one color phase of a conflict-free assembly pass
  kFactorColumn,  ///< one column of a level-scheduled numeric refactorization
};

const char* SolveKindName(SolveKind kind);

struct SolveRecord {
  int id = -1;
  SolveKind kind = SolveKind::kLeading;
  double time_point = 0.0;       ///< circuit time being solved
  double seconds = 0.0;          ///< measured single-thread cost
  int newton_iterations = 0;
  std::vector<int> deps;         ///< ledger ids that must finish first
  bool useful = true;            ///< contributed to the final waveform
};

class Ledger {
 public:
  /// Appends a record, assigning and returning its id.
  int Add(SolveRecord record);

  const std::vector<SolveRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }

  double TotalSeconds() const;
  double UsefulSeconds() const;
  std::size_t CountKind(SolveKind kind) const;
  std::uint64_t TotalNewtonIterations() const;

 private:
  std::vector<SolveRecord> records_;
};

}  // namespace wavepipe::pipeline
