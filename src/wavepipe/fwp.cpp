// Forward pipelining.
//
// While the leading thread solves t1, helper threads already solve t2, t3,
// ... seeded with PREDICTED history (polynomial extrapolation of x, q, qdot).
// When t1 converges, each prediction is validated against the truth in
// chain order:
//
//   prediction close (WRMS <= fwp_prediction_tol)  -> the speculative
//     solution is repaired: one hot-started Newton solve against the true
//     history (typically 1-2 iterations) and the usual LTE test;
//   prediction off  -> the speculative work is discarded; nothing it touched
//     ever reached shared state, so accuracy and convergence are unaffected.
//
// The speedup comes from the repair being far cheaper than the full solve it
// replaces on the critical path.
#include "wavepipe/driver.hpp"

#include <algorithm>

#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace wavepipe::pipeline {

std::vector<PipelineDriver::HelperTask> PipelineDriver::LaunchSpeculativeChain(
    int depth, int first_slot, double t1, double h1, engine::HistoryWindow base_window) {
  std::vector<HelperTask> chain;
  if (depth <= 0) return chain;
  // One predictor candidate per chain; the policy scores its entries'
  // outcomes to keep the online hit-rate ranking fresh (fixed mode always
  // answers kPolynomial).
  const SpecPredictor predictor = policy_.ChoosePredictor();
  engine::HistoryWindow window = std::move(base_window);
  double t_prev = t1;
  // Follow the controller's realized step-growth trajectory: during a
  // cap-limited ramp the serial loop doubles every step, and a chain that
  // reused h1 flat would cover less time per round than serial does per
  // solve.  In steady state the factor is ~1 and this degenerates to h1.
  double h_next = h1 * last_growth_factor_;
  const int order = engine::MethodOrder(options_.sim.method);
  const int predict_points = policy_.PredictorPoints(predictor, order);
  for (int d = 0; d < depth; ++d) {
    // Fabricate the predicted predecessor and extend the window with it.
    engine::SolutionPointPtr predicted =
        engine::PredictPoint(window, predict_points, t_prev);
    window.push_back(predicted);
    if (window.size() > 4) window.erase(window.begin());

    Clip clip_next = ClipStep(t_prev, std::min(h_next, limits_.hmax));
    if (clip_next.hit_stop) break;
    bool corner_landing = false;
    if (clip_next.hit_breakpoint) {
      // The clipped step lands exactly on a source corner.  Only the
      // event-aware candidate keeps it: the corner point is solved like the
      // serial loop would solve it, and accepting it performs the breakpoint
      // restart one round early.  Extrapolating PAST a corner is poison, so
      // the chain always ends here.
      if (predictor != SpecPredictor::kEvent) break;
      corner_landing = true;
      policy_.NoteEventSnap();
    } else if (predictor == SpecPredictor::kEvent) {
      // Zero crossings: pull the placement back onto a predicted waveform
      // sign change inside the step (corners are handled by the clipper).
      const SpecEventSnap snap = policy_.PredictEvent(
          window, circuit_.num_nodes(), {}, 0, t_prev, clip_next.t_new, limits_.hmin);
      if (snap.snapped) clip_next.t_new = snap.time;
    }
    HelperTask task;
    task.time = clip_next.t_new;
    task.predicted_predecessor = predicted;
    task.deps = DepsOf(window);  // predicted points carry no ledger id
    task.predictor = predictor;
    task.hit_breakpoint = corner_landing;
    task.future = SubmitSolve(first_slot + d, window, clip_next.t_new, /*restart=*/false);
    chain.push_back(std::move(task));
    if (corner_landing) break;
    t_prev = clip_next.t_new;
    h_next *= last_growth_factor_;
  }
  return chain;
}

void PipelineDriver::DiscardSpeculativeChain(std::vector<HelperTask>& chain,
                                             std::vector<engine::StepSolveResult>& results,
                                             std::size_t from) {
  for (std::size_t d = from; d < chain.size(); ++d) {
    WP_TINSTANT("sched", "speculation_discarded");
    result_.sched.speculative_solves += 1;
    result_.sched.speculative_discarded += 1;
    CountSchemeSpeculation(/*accepted=*/false);
    // Unvalidated tail entries feed the policy's cost averages but not the
    // predictor hit rates (their predictions were never compared to truth).
    policy_.OnEntryOutcome(chain[d].predictor, /*accepted=*/false,
                           results[d].newton.iterations, /*scored=*/false);
    Record(SolveKind::kSpeculative, results[d], std::move(chain[d].deps),
           /*useful=*/false);
  }
}

void PipelineDriver::ValidateSpeculativeChain(
    std::vector<HelperTask>& chain, std::vector<engine::StepSolveResult>& results) {
  const engine::StepControlParams params =
      ParamsWithCap(engine::MethodOrder(options_.sim.method), options_.sim.step_growth);

  int accepted_entries = 0;
  for (std::size_t d = 0; d < chain.size(); ++d) {
    HelperTask& task = chain[d];
    engine::StepSolveResult& spec = results[d];
    result_.sched.speculative_solves += 1;

    const engine::SolutionPointPtr truth = history_.newest();  // real predecessor
    double prediction_error = engine::SolutionWrmsDistance(
        task.predicted_predecessor->x, truth->x, params);
    // Fault site: a forced mispredict proves the adaptive controller degrades
    // depth instead of thrashing when every prediction goes bad.
    if (WP_FAULT_POINT("spec.mispredict")) {
      prediction_error = 2.0 * options_.fwp_prediction_tol;
    }

    bool chain_continues = false;
    bool entry_accepted = false;
    if (!spec.converged) {
      WP_DEBUG << "fwp: speculative solve at t=" << task.time << " failed Newton";
      Record(SolveKind::kSpeculative, spec, std::move(task.deps), /*useful=*/false);
    } else if (prediction_error > options_.fwp_prediction_tol ||
               (prediction_error > options_.fwp_direct_tol && !RepairWorthwhile())) {
      // Too far off to use — or only repairable, and repairs currently cost
      // as much as the cold solve they would replace (see RepairWorthwhile).
      WP_DEBUG << "fwp: discarding speculation at t=" << task.time
               << " (prediction error " << prediction_error << ")";
      Record(SolveKind::kSpeculative, spec, std::move(task.deps), /*useful=*/false);
    } else if (prediction_error <= options_.fwp_direct_tol) {
      // Prediction within solver tolerance: the speculative solution differs
      // from the exact one by the same order as the Newton/LTE error already
      // admitted at every point — accept it directly.  Nothing lands on the
      // critical path; this is forward pipelining's payoff case.
      //
      // One repair IS mandatory though: qdot.  The speculative solve derived
      // dq/dt from the PREDICTED history; the mismatch against the true
      // history is amplified by a0 ~ 1/h, and the trapezoidal rule carries
      // qdot forward undamped — publishing it as-is rings the integrator
      // into a permanent hmin death spiral.  Recompute qdot consistently
      // against the true history (O(states), no solve).
      //
      // When the circuit carries history-COUPLED states (a ReducedSubnet's
      // interior voltages and absorbed-capacitor charges), q itself needs
      // the same treatment: those states are functions of the state history,
      // not of x, so their prediction error would feed state→state without
      // ever crossing the validated solution and the trapezoidal rule rings
      // it up unbounded.  RefreshPointStates re-derives q AND qdot with one
      // device-eval pass (no solve) on the idle contexts_[0].  Gated on the
      // circuit flag so ordinary runs keep their published states (recorded
      // one Newton iterate behind x, like the serial engine's) bit-for-bit.
      const engine::HistoryWindow true_window = history_.Window(4);
      engine::IntegrationPlan true_plan;
      if (circuit_.has_history_coupled_states()) {
        true_plan = engine::RefreshPointStates(*contexts_[0], true_window,
                                               spec.plan.effective_method,
                                               spec.point, options_.sim);
      } else {
        std::vector<double> hist(spec.point->q.size());
        true_plan = engine::PlanIntegration(spec.plan.effective_method, task.time,
                                            true_window, hist);
        engine::ComputeQdot(true_plan, spec.point->q, hist, spec.point->qdot);
      }

      // Assess against the TRUE-window predictor (exactly what the serial
      // controller would have used), not the speculative one built over
      // predicted history — the latter is pessimistic and would shrink the
      // next step for no physical reason.
      const double h_d = task.time - truth->time;
      std::vector<double> true_prediction(spec.point->x.size());
      engine::PredictSolution(true_window, true_plan.order + 1, task.time,
                              true_prediction);
      const engine::StepAssessment assess = engine::AssessStep(
          spec.point->x, true_prediction, h_d, /*lte_active=*/true, params);
      // Direct acceptance demands 2x LTE headroom (error <= 0.5, not merely
      // <= 1): the solution noise it admits is h-INDEPENDENT, and without
      // headroom the step controller can be pinned at its error floor — h
      // collapses to hmin and every force-accepted sliver re-seeds the
      // floor.  With the margin, every direct-accepted step's h_next grows,
      // so the collapse is structurally impossible.
      if (assess.accept && assess.error <= 0.5) {
        const int spec_id =
            Record(SolveKind::kSpeculative, spec, std::move(task.deps), /*useful=*/true);
        AcceptPoint(spec.point, spec_id, /*leading=*/true);
        OnLeadingAccepted(assess, task.hit_breakpoint, options_.sim.step_growth,
                          h_d, /*update_step_control=*/false);
        result_.sched.speculative_accepted += 1;
        result_.sched.speculative_direct += 1;
        ++accepted_entries;
        entry_accepted = true;
        if (task.hit_breakpoint) {
          // Event-snapped corner point: OnLeadingAccepted just performed the
          // breakpoint restart (h_ = h0) and the chain ends here by
          // construction.
          CountSchemeSpeculation(/*accepted=*/true);
          policy_.OnEntryOutcome(task.predictor, /*accepted=*/true,
                                 spec.newton.iterations, /*scored=*/true);
          DiscardSpeculativeChain(chain, results, d + 1);
          policy_.OnChainValidated(static_cast<int>(chain.size()), accepted_entries);
          return;
        }
        // The suggested next step trails the accepted spec point; scale it
        // along the clean growth trajectory so the next lead continues from
        // here rather than re-stepping over covered time.
        h_ = std::clamp(h_d * last_growth_factor_, limits_.hmin, limits_.hmax);
        chain_continues = true;
      } else {
        // The speculative step overreached; drop it and break the chain.
        // Deliberately NOT OnLteRejection: the leading trajectory's h_ was
        // set by the last accepted step's controller and a failed
        // opportunistic extra must not shrink it.
        Record(SolveKind::kSpeculative, spec, std::move(task.deps), /*useful=*/false);
        result_.stats.steps_rejected_lte += 1;
      }
    } else {
      // Prediction close but not tolerance-tight: record the overlapped
      // work, then repair — one hot-started solve against the true history.
      const int spec_id =
          Record(SolveKind::kSpeculative, spec, std::move(task.deps), /*useful=*/true);

      const engine::HistoryWindow true_window = history_.Window(4);
      std::vector<int> repair_deps = DepsOf(true_window);
      repair_deps.push_back(spec_id);
      auto repair_future =
          SubmitSolve(0, true_window, task.time, /*restart=*/false, spec.point->x);
      engine::StepSolveResult repair = JoinSolve(repair_future);
      result_.sched.repair_solves += 1;
      result_.sched.repair_newton_iterations +=
          static_cast<std::uint64_t>(repair.newton.iterations);

      if (repair.converged) {
        const double h_d = task.time - truth->time;
        const engine::StepAssessment assess = engine::AssessStep(
            repair.point->x, repair.predicted, h_d, /*lte_active=*/true, params);
        if (assess.accept) {
          const int repair_id =
              Record(SolveKind::kRepair, repair, std::move(repair_deps), /*useful=*/true);
          AcceptPoint(repair.point, repair_id, /*leading=*/true);
          OnLeadingAccepted(assess, task.hit_breakpoint, options_.sim.step_growth,
                            h_d);
          result_.sched.speculative_accepted += 1;
          ++accepted_entries;
          entry_accepted = true;
          if (task.hit_breakpoint) {
            CountSchemeSpeculation(/*accepted=*/true);
            policy_.OnEntryOutcome(task.predictor, /*accepted=*/true,
                                   spec.newton.iterations, /*scored=*/true);
            DiscardSpeculativeChain(chain, results, d + 1);
            policy_.OnChainValidated(static_cast<int>(chain.size()), accepted_entries);
            return;
          }
          chain_continues = true;
        } else {
          // Same reasoning as the direct path: chain break, no h_ penalty.
          Record(SolveKind::kRejected, repair, std::move(repair_deps), /*useful=*/false);
          result_.stats.steps_rejected_lte += 1;
        }
      } else {
        Record(SolveKind::kRejected, repair, std::move(repair_deps), /*useful=*/false);
      }
    }

    CountSchemeSpeculation(entry_accepted);
    policy_.OnEntryOutcome(task.predictor, entry_accepted, spec.newton.iterations,
                           /*scored=*/true);
    if (!chain_continues) {
      WP_TINSTANT("sched", "speculation_discarded");
      result_.sched.speculative_discarded += 1;
      DiscardSpeculativeChain(chain, results, d + 1);
      policy_.OnChainValidated(static_cast<int>(chain.size()), accepted_entries);
      return;
    }
  }
  policy_.OnChainValidated(static_cast<int>(chain.size()), accepted_entries);
}

void PipelineDriver::RunRoundForward() {
  // Speculation needs a trustworthy extrapolation basis.
  if (restart_ || steps_since_restart_ < 1 || history_.size() < 2) {
    RunRoundSerial();
    return;
  }

  const double t_now = history_.newest_time();
  h_ = std::clamp(h_, limits_.hmin, limits_.hmax);
  const Clip clip1 = ClipStep(t_now, h_);
  if (clip1.hit_breakpoint || clip1.hit_stop) {
    // Never speculate across a waveform corner or the stop time.
    RunRoundSerial();
    return;
  }
  const double h1 = clip1.t_new - t_now;

  // ---- launch: leading + speculative chain ---------------------------------
  const engine::HistoryWindow base_window = history_.Window(4);
  std::vector<int> lead_deps = DepsOf(base_window);
  auto lead_future = SubmitSolve(0, base_window, clip1.t_new, /*restart=*/false);
  const int depth = policy_.ChooseChainDepth(std::min(options_.threads - 1, 3));
  std::vector<HelperTask> chain =
      LaunchSpeculativeChain(depth, /*first_slot=*/1, clip1.t_new, h1, base_window);

  // ---- join -------------------------------------------------------------------
  // Drain EVERY in-flight future before acting on any outcome: a worker
  // exception folds into a failed solve (JoinSolve) instead of abandoning
  // the rest of the chain mid-flight.
  engine::StepSolveResult lead = JoinSolve(lead_future);
  std::vector<engine::StepSolveResult> spec_results;
  spec_results.reserve(chain.size());
  for (auto& task : chain) spec_results.push_back(JoinSolve(task.future));

  if (!lead.converged) {
    DiscardSpeculativeChain(chain, spec_results, 0);
    policy_.OnChainValidated(static_cast<int>(chain.size()), 0);
    OnNewtonFailure(h1, lead, std::move(lead_deps));
    return;
  }

  const engine::StepControlParams params =
      ParamsWithCap(lead.plan.order, options_.sim.step_growth);
  const engine::StepAssessment lead_assess =
      engine::AssessStep(lead.point->x, lead.predicted, h1, /*lte_active=*/true, params);
  if (!lead_assess.accept && h1 > limits_.hmin * (1.0 + 1e-6)) {
    DiscardSpeculativeChain(chain, spec_results, 0);
    policy_.OnChainValidated(static_cast<int>(chain.size()), 0);
    Record(SolveKind::kRejected, lead, std::move(lead_deps), /*useful=*/false);
    OnLteRejection(lead_assess, h1);
    return;
  }

  const int lead_id =
      Record(SolveKind::kLeading, lead, std::move(lead_deps), /*useful=*/true);
  AcceptPoint(lead.point, lead_id, /*leading=*/true);
  OnLeadingAccepted(lead_assess, /*hit_breakpoint=*/false,
                    options_.sim.step_growth, h1);

  ValidateSpeculativeChain(chain, spec_results);
}

}  // namespace wavepipe::pipeline
