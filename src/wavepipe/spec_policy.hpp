// Adaptive speculation policy for the WavePipe pipeline engine.
//
// The fixed scheduler speculates at a constant chain depth with one
// polynomial predictor, so every deck pays the same speculative-work budget
// regardless of whether predictions are landing.  The telemetry layer prices
// the waste exactly (discarded-work spans, ledger `useful=false` records);
// this policy closes the loop:
//
//  * DEPTH CONTROLLER — tracks an exponentially-weighted acceptance rate of
//    speculative chain entries plus EWMA costs of leading solves, repairs,
//    and discarded solves (the same numbers the ledger records).  A chain
//    entry at position k is useful only when every entry before it was
//    accepted, so its expected value is a^k * (cost of the leading solve it
//    replaces) against an expected waste of (1 - a^k) * (cost of a discarded
//    solve).  The target depth is the largest k whose expected value still
//    beats its expected waste; the controller steps the live depth by at
//    most one per round toward that target (hysteresis — no thrash when the
//    acceptance estimate wobbles around a threshold).
//
//  * MULTI-CANDIDATE PREDICTOR — three ways to fabricate the predicted
//    predecessor a speculative solve integrates from:
//      kPolynomial  the historical order+1-point Lagrange extrapolation;
//      kHighOrder   one more divided-difference point (order+2) — pays on
//                   smooth analog trajectories (oscillators, RC meshes);
//      kEvent       polynomial seeding plus EVENT-AWARE PLACEMENT: when a
//                   source breakpoint or a predicted waveform zero crossing
//                   sits inside the speculative step, the point snaps ONTO
//                   the event instead of extrapolating past it (cf. intrp::
//                   ZeroCrossingPredictor, SNIPPETS.md snippet 3).
//    Candidates are scored online by EWMA hit rate (hit = the entry they
//    seeded was accepted); chain launches exploit the best-scoring candidate
//    with a deterministic round-robin exploration slot every
//    `explore_period` launches so a benched candidate can win back.
//
//  * BACKWARD PLACEMENT — chooses the combined scheme's backward-point
//    count (speculation demonstrably not paying -> convert the forward slot
//    into a second backward point) and where in the trailing interval the
//    backward point lands (frequent LTE rejections pull it toward the
//    leading edge, densifying the estimator basis exactly where the raised
//    growth cap needs it).
//
// Accuracy is never policy-dependent: the policy only decides how much
// speculative work is launched and where speculative points land.  Every
// accepted point still passes the unchanged Newton convergence and LTE
// tests, and `mode = kFixed` (the default) reproduces the historical
// scheduler decision-for-decision, bit for bit.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "engine/history.hpp"
#include "util/telemetry.hpp"

namespace wavepipe::pipeline {

enum class SpecPolicyMode { kFixed, kAdaptive };

const char* SpecPolicyModeName(SpecPolicyMode mode);

/// Predictor candidates for seeding speculative solves.
enum class SpecPredictor { kPolynomial = 0, kHighOrder = 1, kEvent = 2 };
inline constexpr int kNumSpecPredictors = 3;

const char* SpecPredictorName(SpecPredictor predictor);

struct SpecPolicyOptions {
  SpecPolicyMode mode = SpecPolicyMode::kFixed;
  /// Depth bounds for the adaptive controller.  min_depth = 0 lets the
  /// controller throttle speculation OFF entirely on a losing streak; a
  /// deterministic probe chain every `probe_period` rounds keeps the
  /// acceptance estimate alive so speculation can resume when the waveform
  /// turns predictable again.
  int min_depth = 0;
  int max_depth = 6;
  /// EWMA smoothing for the acceptance estimate and the cost averages.
  double ema = 0.2;
  /// Waste aversion: how many units of discarded-solve cost one unit of
  /// saved leading-solve cost must outweigh.  Small by design — on the
  /// modeled k-worker pipeline a discarded speculative solve mostly burns an
  /// otherwise-idle slot, while an accepted one shortens the critical path.
  double waste_weight = 0.12;
  /// While the throttle holds the depth at 0, every probe_period-th round
  /// still launches a one-entry probe chain (deterministic cadence).
  int probe_period = 16;
  /// Every explore_period-th chain launch round-robins through the
  /// candidates instead of exploiting the best score (deterministic).
  int explore_period = 8;
  /// Combined scheme: convert the forward helper into a second backward
  /// point while the acceptance EWMA sits below this (after warmup), and a
  /// third one below half of it (after twice the warmup) — backward solves
  /// are never speculative, so with speculation not paying the freed slots
  /// are worth more as growth-cap raisers.
  double bwp_convert_threshold = 0.25;
  int bwp_convert_warmup = 32;  ///< speculative samples before converting
  /// Backward-fraction placement bounds (fraction of the trailing interval).
  double backward_fraction_min = 0.35;
  double backward_fraction_max = 0.75;
  /// Ignore zero crossings of components whose current magnitude is below
  /// this floor (they are already sitting at zero, not approaching it).
  double zero_cross_floor = 1e-6;
};

/// Counters exported under the `spec.` prefix — additive to the
/// wavepipe.run_stats.v1 schema (every engine exports the group; engines
/// without a pipeline scheduler export the defaults).
struct SpecPolicyStats {
  std::uint64_t depth_decisions = 0;
  std::uint64_t depth_chosen = 0;  ///< sum of chosen depths (avg = /decisions)
  std::uint64_t depth_raises = 0;
  std::uint64_t depth_cuts = 0;
  std::uint64_t event_snaps = 0;  ///< speculative points snapped onto events
  std::array<std::uint64_t, kNumSpecPredictors> predictor_hits{};
  std::array<std::uint64_t, kNumSpecPredictors> predictor_misses{};

  /// Registers every field under the `spec.` prefix; per-candidate hit/miss
  /// counters expand to one pair per SpecPredictorName.
  void ExportCounters(util::telemetry::CounterRegistry& registry) const;
};

/// Result of an event-placement query.
struct SpecEventSnap {
  double time = 0.0;       ///< placement (== t_cand when !snapped)
  bool snapped = false;
  bool breakpoint = false;  ///< the event was a source breakpoint
};

class SpeculationPolicy {
 public:
  SpeculationPolicy() = default;
  SpeculationPolicy(const SpecPolicyOptions& options, double fixed_backward_fraction);

  bool adaptive() const { return options_.mode == SpecPolicyMode::kAdaptive; }

  // ---- per-round decisions --------------------------------------------------
  /// Chain depth for this round.  `fixed_depth` is the historical scheme
  /// expression (e.g. threads - 1 - nb); fixed mode returns it unchanged.
  /// Adaptive mode warm-starts from it, then follows the controller within
  /// [min_depth, max_depth].
  int ChooseChainDepth(int fixed_depth);

  /// Backward helper count for the combined scheme.  `fixed_count` is the
  /// historical choice (including the legacy low-acceptance bump);
  /// `max_count` bounds the adaptive answer (growth-cap table / threads).
  int ChooseBackwardCount(int fixed_count, int max_count) const;

  /// Where a single backward point lands in the trailing interval.
  double ChooseBackwardFraction() const;

  /// Predictor for this round's chain (also advances the exploration
  /// schedule — call once per launched chain).
  SpecPredictor ChoosePredictor();

  /// History points the candidate's extrapolation uses (order+1 everywhere
  /// except kHighOrder's order+2 divided-difference stencil).
  int PredictorPoints(SpecPredictor predictor, int order) const;

  /// Event-aware placement: the earliest event inside (t_prev + hmin,
  /// t_cand) — a source breakpoint from `breakpoints[next_bp..]` or a
  /// predicted zero crossing of one of the first `norm_unknowns` solution
  /// components over the real history `window`.  Returns t_cand unsnapped
  /// when no event is due.  Counts spec.event_snaps when it snaps.
  SpecEventSnap PredictEvent(const engine::HistoryWindow& window, int norm_unknowns,
                             std::span<const double> breakpoints, std::size_t next_bp,
                             double t_prev, double t_cand, double hmin);

  // ---- outcome feedback -----------------------------------------------------
  /// One validated chain entry: accepted (directly or via repair) or not.
  /// `scored` is false for tail entries discarded unvalidated (their
  /// prediction was never compared against a truth, so they feed the cost
  /// averages but not the predictor hit rates).
  void OnEntryOutcome(SpecPredictor predictor, bool accepted, int newton_iters,
                      bool scored);
  /// Cost of a cold leading solve (what an accepted speculation saves).
  void OnLeadCost(int newton_iters);
  /// Cost of hot-start repairing a near-miss prediction.
  void OnRepairCost(int newton_iters);
  /// A speculative point landed on an event found by the step clipper
  /// (source corner) rather than by PredictEvent.
  void NoteEventSnap() { ++stats_.event_snaps; }
  /// Round finished validating a chain of `launched` entries: fold the
  /// round's acceptance into the EWMA and step the depth toward the target.
  void OnChainValidated(int launched, int accepted);
  /// Leading-edge LTE feedback, drives backward placement.
  void OnLteRejection();
  void OnLeadingAccepted();

  // ---- checkpoint/resume ----------------------------------------------------
  /// Appends the complete controller/predictor state — stats counters and
  /// EWMA scalars — in a fixed order for the pipeline checkpoint.
  void SaveState(std::vector<std::uint64_t>& u64, std::vector<double>& f64) const;
  /// Restores state packed by SaveState (same fixed layout).
  void RestoreState(std::span<const std::uint64_t> u64, std::span<const double> f64);
  /// Entries SaveState appends to each vector (resume-layout validation).
  static constexpr std::size_t kStateU64 = 18;
  static constexpr std::size_t kStateF64 = 8;

  // ---- introspection (tests, stats export) ---------------------------------
  const SpecPolicyStats& stats() const { return stats_; }
  double acceptance_ewma() const { return acceptance_ewma_; }
  int current_depth() const { return current_depth_; }
  const SpecPolicyOptions& options() const { return options_; }

 private:
  int TargetDepth() const;

  SpecPolicyOptions options_;
  double fixed_backward_fraction_ = 0.5;

  // Controller state.
  int current_depth_ = -1;  ///< -1 until the first ChooseChainDepth warm start
  double acceptance_ewma_ = 0.0;
  bool acceptance_seeded_ = false;
  double lead_iters_ewma_ = 0.0;
  double repair_iters_ewma_ = 0.0;
  double discard_iters_ewma_ = 0.0;
  double lte_reject_ewma_ = 0.0;  ///< rejections per leading decision

  // Predictor scoring.
  std::array<double, kNumSpecPredictors> hit_rate_ewma_{};
  std::array<bool, kNumSpecPredictors> hit_rate_seeded_{};
  std::uint64_t chain_launches_ = 0;
  std::uint64_t total_entries_ = 0;  ///< validated speculative entries seen

  SpecPolicyStats stats_;
};

}  // namespace wavepipe::pipeline
