// PipelineDriver: the machinery shared by all WavePipe schemes — fork/join
// round execution over a thread pool, breakpoint handling, history and trace
// management, ledger bookkeeping.
//
// Each scheme contributes one RunRound*() method (bwp.cpp, fwp.cpp,
// combined.cpp); a round inspects the shared history, launches concurrent
// SolveTimePoint tasks on per-slot SolveContexts, joins them, and decides
// what to accept.  Rounds are the synchronization unit: between rounds only
// the driver thread touches shared state, which keeps the scheduler
// deterministic (a requirement the tests rely on).
#pragma once

#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "engine/dcop.hpp"
#include "engine/newton.hpp"
#include "engine/resilience.hpp"
#include "engine/step_control.hpp"
#include "engine/transient.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe::pipeline {

class PipelineDriver {
 public:
  PipelineDriver(const engine::Circuit& circuit, const engine::MnaStructure& structure,
                 const engine::TransientSpec& spec, const WavePipeOptions& options);

  WavePipeResult Run();

 private:
  // ---- per-scheme round logic (one accepted leading step or a retry) ------
  void RunRoundSerial();
  void RunRoundBackward();
  void RunRoundForward();
  void RunRoundCombined();

  // ---- shared helpers -------------------------------------------------------
  using Clip = engine::StepClip;
  /// Clips t_from + h to the next breakpoint / tstop via the ONE clipping
  /// rule shared with the serial engine (engine::ClipStepToSchedule), so the
  /// two drivers' step sequences are identical by construction.
  Clip ClipStep(double t_from, double h);

  /// Launches SolveTimePoint asynchronously on context slot `slot`.
  std::future<engine::StepSolveResult> SubmitSolve(int slot, engine::HistoryWindow window,
                                                   double t_new, bool restart,
                                                   std::vector<double> seed_x = {});

  /// Ledger ids of the records that produced the window's points (task deps).
  std::vector<int> DepsOf(const engine::HistoryWindow& window) const;

  /// Records a solve in the ledger; returns its id.
  int Record(SolveKind kind, const engine::StepSolveResult& solve,
             std::vector<int> deps, bool useful);

  /// Per-scheme speculation attribution: one resolved speculative entry
  /// (accepted or not) credited to the configured scheme's sub-counters.
  void CountSchemeSpeculation(bool accepted);
  /// Same for one joined backward helper solve.
  void CountSchemeBackward();

  /// Accepts a solution point: history + ledger-id map (+ trace for leading
  /// points).
  void AcceptPoint(const engine::SolutionPointPtr& point, int ledger_id, bool leading);

  /// Joins one solve future, draining any exception the task threw into a
  /// non-converged StepSolveResult (counted in sched.drained_task_errors).
  /// Rounds join EVERY in-flight future through this before acting on any
  /// failure, which is what makes them exception-safe: no future is ever
  /// abandoned mid-flight, so no worker outcome can be lost or deadlock a
  /// later round.
  engine::StepSolveResult JoinSolve(std::future<engine::StepSolveResult>& future);

  /// Handles a failed leading solve (Newton divergence): shrink h, count it
  /// toward quarantine, and — once the step has shrunk to hmin — climb the
  /// rescue ladder before declaring a structured abort (never a throw).
  void OnNewtonFailure(double attempted_h, const engine::StepSolveResult& solve,
                       std::vector<int> deps);

  /// Arms/extends the serial-only cooldown once consecutive_failures_
  /// reaches options_.quarantine_threshold.
  void MaybeQuarantine();
  /// Handles an LTE rejection of the leading step.
  void OnLteRejection(const engine::StepAssessment& assess, double attempted_h);
  /// Bookkeeping after an accepted leading step of size `h_used`.  When
  /// `update_step_control` is false the acceptance is recorded but h_ and
  /// the growth factor keep their last clean values — used for directly-
  /// accepted speculative steps, whose tolerance-scale solution noise sits
  /// on the LTE estimate as an h-independent floor and would otherwise
  /// drive the controller's err -> h feedback into a downward wobble.
  void OnLeadingAccepted(const engine::StepAssessment& assess, bool hit_breakpoint,
                         double growth_cap, double h_used,
                         bool update_step_control = true);

  /// Step-control parameter block with the given growth cap.
  engine::StepControlParams ParamsWithCap(int order, double cap) const;

  /// One in-flight helper solve (backward point or speculative point).
  struct HelperTask {
    double time = 0.0;
    engine::SolutionPointPtr predicted_predecessor;  // speculative chains only
    std::vector<int> deps;
    std::future<engine::StepSolveResult> future;
    /// Predictor that seeded this speculative entry (policy hit-rate scoring).
    SpecPredictor predictor = SpecPredictor::kPolynomial;
    /// Event-aware placement landed this entry exactly on a source corner;
    /// accepting it performs the breakpoint restart and ends the chain.
    bool hit_breakpoint = false;
  };

  /// Launches `count` backward-point solves inside the trailing history
  /// interval on context slots first_slot, first_slot+1, ...
  std::vector<HelperTask> LaunchBackwardTasks(int count, int first_slot);
  /// Joins backward tasks and publishes converged points (auxiliary) into
  /// the shared history + ledger.
  void JoinAndPublishBackward(std::vector<HelperTask>& tasks);

  /// Launches up to `depth` chained speculative solves at t1+h1, t1+2*h1, ...
  /// over predicted histories.  Stops before any breakpoint/stop corner.
  std::vector<HelperTask> LaunchSpeculativeChain(int depth, int first_slot, double t1,
                                                 double h1,
                                                 engine::HistoryWindow base_window);
  /// Discards an entire speculative chain starting at entry `from` (records
  /// the wasted work in the ledger).
  void DiscardSpeculativeChain(std::vector<HelperTask>& chain,
                               std::vector<engine::StepSolveResult>& results,
                               std::size_t from);
  /// Validates + repairs the chain after the leading step was accepted.
  void ValidateSpeculativeChain(std::vector<HelperTask>& chain,
                                std::vector<engine::StepSolveResult>& results);

  /// Number of backward helper points this scheme/thread-count runs per
  /// round (0 when history is too short or a restart is pending).
  int BackwardPointCount() const;
  double BwpGrowthCap(int backward_points) const;

  bool Done() const;

  // ---- durable-run machinery (engine/resilience.hpp) -----------------------
  /// Serializes the CURRENT round-barrier state (rounds are the pipeline's
  /// quiescent checkpoint boundaries — between rounds no solve is in flight).
  std::vector<std::uint8_t> Snapshot();
  /// Restores history/trace/ledger/step-control/scheduler state and primes
  /// every context's linear solvers from the per-slot replay seeds.  Throws
  /// util::CheckpointError on any fingerprint or layout mismatch.
  void RestoreFromCheckpoint(const engine::TransientCheckpoint& ck);
  /// Round-barrier hook: breaker cooldowns, checkpoint cadence, the budget
  /// governor and watchdog escalation.  Sets aborted_ to stop the run.
  void RoundBarrier();
  /// Feature mask of the accelerated paths currently engaged (breaker
  /// attribution for leading-solve outcomes).
  std::uint64_t ActiveFeatureMask() const;
  /// Degrades every feature in `tripped` across all contexts.
  void ApplyBreakerTrips(std::uint64_t tripped);
  /// Scheduler + speculation-policy state <-> checkpoint vectors.
  void PackSched(std::vector<std::uint64_t>& u64, std::vector<double>& f64) const;
  void UnpackSched(std::span<const std::uint64_t> u64, std::span<const double> f64);
  /// Context i's BBD counters net of the factor work spent PRIMING it at
  /// resume (bookkeeping, not simulation work).
  sparse::BbdStats NetBbdStats(std::size_t i) const;

  // ---- immutable configuration ---------------------------------------------
  const engine::Circuit& circuit_;
  const engine::MnaStructure& structure_;
  engine::TransientSpec spec_;
  WavePipeOptions options_;
  engine::StepLimits limits_;
  std::vector<double> breakpoints_;

  // ---- run state -------------------------------------------------------------
  std::vector<std::unique_ptr<engine::SolveContext>> contexts_;
  /// Shared conflict-free colored assembler (parallel/coloring.hpp) attached
  /// to every context when options_.assembly_threads engages it.  Colored
  /// assemblers are stateless per call, so concurrent pipelined solves on
  /// different contexts can share this one instance.
  std::unique_ptr<engine::DeviceAssembler> assembler_;
  std::unique_ptr<util::ThreadPool> pool_;
  /// Intra-solve pool shared by colored assembly and level-scheduled LU
  /// factorization.  Deliberately separate from pool_: pipeline workers
  /// block on intra-solve futures, so the two pools must not share threads.
  std::unique_ptr<util::ThreadPool> intra_pool_;
  engine::History history_;
  std::map<const engine::SolutionPoint*, int> ledger_id_of_point_;
  std::size_t next_breakpoint_ = 0;
  double h_ = 0.0;
  bool restart_ = true;
  int steps_since_restart_ = 0;
  int bwp_cooldown_ = 0;  ///< rounds to hold the serial growth cap after a rejection
  double last_leading_time_ = 0.0;  ///< previous leading accept (bypass valve)
  int floor_streak_ = 0;  ///< leading accepts pinned at hmin (bypass valve)
  // ---- failure hardening -----------------------------------------------------
  bool aborted_ = false;          ///< unrecoverable failure; Run() returns partial
  std::string abort_reason_;
  int consecutive_failures_ = 0;  ///< leading Newton failures since last clean accept
  int quarantine_rounds_left_ = 0;  ///< serial-only cooldown countdown
  /// Realized step-growth factor of the last accepted leading step.  The
  /// speculative chain follows this trajectory (t2 = t1 + g*h1, ...): during
  /// cap-limited ramps the serial controller doubles every step, and a chain
  /// that reused h1 flat would fall behind the serial trajectory and lose.
  double last_growth_factor_ = 1.0;

  /// Running Newton-iteration averages (exponential moving averages) that
  /// drive the adaptive repair policy: a hot-started repair only belongs on
  /// the critical path when it is actually cheaper than the cold solve it
  /// replaces.  With cheap device models and a good predictor, cold solves
  /// converge in ~2 iterations and repairs cannot pay — the rational policy
  /// degenerates to direct-accept-or-discard.  With expensive multi-
  /// iteration models (the paper's regime) repairs stay enabled.
  double avg_lead_iters_ = 0.0;
  double avg_repair_iters_ = 0.0;
  int repair_samples_ = 0;
  bool RepairWorthwhile() const;

  /// Speculation policy (spec_policy.hpp): chain depth, predictor choice,
  /// backward count/placement.  kFixed mode observes without steering.
  SpeculationPolicy policy_;

  WavePipeResult result_;

  // ---- durable-run state (declared after result_: the sink/watchdog/breaker
  // constructors bind result_.resilience) ------------------------------------
  engine::CheckpointSink sink_;
  engine::RunBudget budget_;
  engine::StallWatchdog watchdog_;
  engine::BreakerBoard breakers_;
  util::WallTimer total_timer_;
  std::uint64_t process_steps_ = 0;   ///< accepted steps THIS process (budget basis)
  std::uint64_t process_newton_ = 0;  ///< Newton iterations THIS process
  bool chord_configured_ = false;     ///< chord enabled at construction (re-probe target)
  /// Per-context BBD factor counters spent priming replay seeds at resume.
  std::vector<sparse::BbdStats> bbd_prime_base_;
};

}  // namespace wavepipe::pipeline
