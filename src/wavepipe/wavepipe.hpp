// WavePipe public API: waveform-pipelined parallel transient simulation.
//
// Reproduces Dong, Li, Ye, "WavePipe: parallel transient simulation of analog
// and digital circuits on multi-core shared-memory machines", DAC 2008.
//
// Three schemes over the same SPICE-class core (src/engine):
//
//  * kBackward  — backward pipelining: helper threads solve full-accuracy
//    intermediate points BEHIND the leading edge; the denser local history
//    makes the divided-difference LTE estimate trustworthy over a longer
//    extrapolation range, so the leading step's growth cap is raised
//    (gamma 2 -> 3 with one helper, -> 4 with two).  Every point is a true
//    circuit solution; acceptance still passes the unchanged LTE test.
//
//  * kForward   — forward pipelining: helper threads speculatively solve
//    FUTURE time points seeded with a polynomial prediction of the not-yet-
//    converged predecessor.  When the predecessor converges, the prediction
//    is validated; a close prediction turns the speculative solve into a
//    cheap hot-start repair, a bad one is discarded and redone.  Accuracy
//    and convergence are never compromised — speculative state is private
//    until validated.
//
//  * kCombined  — one backward helper plus forward speculation (3+ threads).
//
// kSerial runs the conventional loop through the same machinery, producing
// the ledger the speedup comparisons need.
#pragma once

#include <vector>

#include "engine/circuit.hpp"
#include "engine/mna.hpp"
#include "engine/options.hpp"
#include "engine/trace.hpp"
#include "engine/transient.hpp"
#include "wavepipe/ledger.hpp"
#include "wavepipe/spec_policy.hpp"

namespace wavepipe::pipeline {

enum class Scheme { kSerial, kBackward, kForward, kCombined };

const char* SchemeName(Scheme scheme);

struct WavePipeOptions {
  Scheme scheme = Scheme::kCombined;
  /// Worker threads (including the leading solve).  Serial ignores it.
  int threads = 2;

  /// Raised leading-edge growth caps, indexed by (number of backward helper
  /// points - 1).  Reconstructed from the paper's scheme: one extra backward
  /// point justifies gamma = 3, two justify 4; beyond that the estimator
  /// gains little.
  std::vector<double> bwp_growth_caps = {3.0, 4.0, 4.5};
  /// Where in the trailing interval the backward point lands (0.5 = middle).
  double bwp_backward_fraction = 0.5;

  /// Direct-acceptance threshold for forward pipelining, in the WRMS units
  /// of the solver tolerance.  When the predicted predecessor was within
  /// this distance of the converged truth, the speculative solution is
  /// accepted AS IS: its deviation from the exact solution is of the same
  /// order as the Newton/LTE error already admitted everywhere, and skipping
  /// the repair removes the solve from the critical path entirely — this is
  /// where forward pipelining's speedup comes from.
  /// Default 1.0 = strictly within solver tolerance.  Looser values buy more
  /// overlap but inject tolerance-scale noise into the history, which costs
  /// extra LTE rejections on smooth analog circuits (see bench_abl_predictor).
  double fwp_direct_tol = 1.0;

  /// Repair threshold: predictions worse than fwp_direct_tol but within this
  /// bound trigger a hot-started re-solve against the true history (cheap,
  /// 1-2 Newton iterations); beyond it the speculative work is discarded.
  /// Accuracy never depends on this knob — only how often speculation pays.
  double fwp_prediction_tol = 8.0;

  /// Stamping threads for conflict-free colored matrix assembly INSIDE each
  /// pipelined solve (orthogonal to `threads`, which parallelizes across
  /// time points).  0/1 keeps the serial device loop.  Only engaged when the
  /// structure-only cost model judges the circuit's conflict graph colorable
  /// at a profit (see parallel/coloring.hpp); on degenerate graphs the
  /// option is silently a no-op rather than a slowdown.
  int assembly_threads = 0;

  /// Workers for level-scheduled parallel LU refactorization / triangular
  /// solves INSIDE each pipelined solve (sparse/lu.hpp).  Shares one worker
  /// pool with assembly_threads — assembly and factorization alternate
  /// within a Newton iteration, so the intra-solve pool is sized
  /// max(assembly_threads, factor_threads).  0/1 keeps the serial LU
  /// kernels; on circuits whose elimination DAG is too deep the per-level
  /// cost model falls back to serial automatically.
  int factor_threads = 0;

  /// Speculation quarantine: after this many CONSECUTIVE leading-point
  /// Newton failures or rescue activations, the pipelined schemes degrade
  /// to the serial round for `quarantine_rounds` rounds.  A circuit region
  /// hostile enough to keep diverging makes speculative work pure waste —
  /// and pipelined retries multiply the failure surface exactly when the
  /// solver is most fragile.  Quarantine never changes accepted solutions
  /// (the serial round applies the identical LTE test); it only withholds
  /// helpers until the leading edge is healthy again.
  int quarantine_threshold = 3;
  int quarantine_rounds = 8;

  /// Adaptive speculation policy (spec_policy.hpp).  The default kFixed mode
  /// reproduces the historical fixed-depth scheduler bit for bit; kAdaptive
  /// lets observed acceptance/cost drive chain depth, predictor choice, and
  /// backward placement.
  SpecPolicyOptions spec_policy;

  engine::SimOptions sim;
};

struct PipelineSchedStats {
  std::size_t rounds = 0;
  std::size_t backward_solves = 0;
  std::size_t speculative_solves = 0;
  std::size_t speculative_accepted = 0;
  std::size_t speculative_direct = 0;  ///< accepted without a repair pass
  std::size_t speculative_discarded = 0;
  std::size_t repair_solves = 0;
  std::uint64_t repair_newton_iterations = 0;
  // Failure-hardening telemetry.
  std::size_t quarantine_activations = 0;  ///< times the cooldown was (re)armed
  std::size_t quarantined_rounds = 0;      ///< rounds forced to the serial scheme
  std::size_t drained_task_errors = 0;     ///< worker exceptions folded into failed solves

  // Per-scheme attribution (additive to the aggregate fields above): which
  // configured scheme launched the work.  A kForward run's speculation lands
  // in fwp_*, a kCombined run's in combined_*; backward helpers split
  // between bwp_* (kBackward) and combined_* the same way.
  std::size_t fwp_speculative_solves = 0;
  std::size_t fwp_speculative_accepted = 0;
  std::size_t combined_speculative_solves = 0;
  std::size_t combined_speculative_accepted = 0;
  std::size_t bwp_backward_solves = 0;
  std::size_t combined_backward_solves = 0;

  double speculation_acceptance() const {
    return speculative_solves == 0
               ? 0.0
               : static_cast<double>(speculative_accepted) /
                     static_cast<double>(speculative_solves);
  }

  double speculation_acceptance_fwp() const {
    return fwp_speculative_solves == 0
               ? 0.0
               : static_cast<double>(fwp_speculative_accepted) /
                     static_cast<double>(fwp_speculative_solves);
  }

  double speculation_acceptance_combined() const {
    return combined_speculative_solves == 0
               ? 0.0
               : static_cast<double>(combined_speculative_accepted) /
                     static_cast<double>(combined_speculative_solves);
  }

  /// Registers every field under the `sched.` prefix (util/telemetry.hpp).
  void ExportCounters(util::telemetry::CounterRegistry& registry) const;
};

struct WavePipeResult {
  engine::Trace trace;
  engine::TransientStats stats;
  PipelineSchedStats sched;
  SpecPolicyStats spec;  ///< speculation-policy counters (spec.* export group)
  Ledger ledger;
  /// Colored-assembly accounting when assembly_threads engaged a colored
  /// assembler; strategy stays "serial" otherwise.
  engine::AssemblyStats assembly;
  engine::SolutionPointPtr final_point;
  /// False when the run aborted before tstop.  Everything computed up to
  /// last_good_time — trace, ledger, stats, final_point — is still here; an
  /// abort never discards the waveform (the historical behaviour was an
  /// unguarded ConvergenceError throw that lost all of it).
  bool completed = true;
  std::string abort_reason;     ///< empty when completed
  double last_good_time = 0.0;  ///< newest accepted time point
  /// Durable-run telemetry (ckpt./watchdog./resilience. counter groups).
  engine::ResilienceStats resilience;
};

/// Runs a transient analysis under the selected scheme.  Thread-safe with
/// respect to the circuit/structure (read-only); the run itself spawns
/// options.threads workers.
WavePipeResult RunWavePipe(const engine::Circuit& circuit,
                           const engine::MnaStructure& structure,
                           const engine::TransientSpec& spec,
                           const WavePipeOptions& options);

}  // namespace wavepipe::pipeline
