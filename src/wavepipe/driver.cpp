#include "wavepipe/driver.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "engine/rescue.hpp"
#include "parallel/coloring.hpp"
#include "partition/partitioner.hpp"
#include "util/checkpoint.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace wavepipe::pipeline {

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSerial: return "serial";
    case Scheme::kBackward: return "bwp";
    case Scheme::kForward: return "fwp";
    case Scheme::kCombined: return "combined";
  }
  return "?";
}

PipelineDriver::PipelineDriver(const engine::Circuit& circuit,
                               const engine::MnaStructure& structure,
                               const engine::TransientSpec& spec,
                               const WavePipeOptions& options)
    : circuit_(circuit),
      structure_(structure),
      spec_(spec),
      options_(options),
      limits_(engine::StepLimits::FromSpec(spec, options.sim)),
      history_(options.sim.history_depth),
      sink_(options.sim.resilience, result_.resilience),
      budget_(options.sim.resilience),
      watchdog_(options.sim.resilience, result_.resilience),
      breakers_(options.sim.resilience, result_.resilience) {
  WP_ASSERT(options_.threads >= 1);
  if (options_.scheme == Scheme::kSerial) options_.threads = 1;
  if (options_.scheme == Scheme::kCombined && options_.threads < 3) {
    // Combined needs one backward + one forward helper; degrade gracefully.
    options_.threads = 3;
  }
  breakpoints_ = circuit.CollectBreakpoints(spec.tstart, spec.tstop);
  policy_ = SpeculationPolicy(options_.spec_policy, options_.bwp_backward_fraction);

  // Fixed mode keeps one context per thread (slot indices never exceed the
  // thread count).  The adaptive policy may speculate deeper than the thread
  // count — the extra solves queue on the same pool — so it needs a context
  // slot for the deepest chain plus the leading solve and backward helpers.
  int slots = options_.threads;
  if (policy_.adaptive() && options_.scheme != Scheme::kSerial) {
    slots = std::max(slots, 3 + policy_.options().max_depth);
  }
  contexts_.reserve(static_cast<std::size_t>(slots));
  for (int i = 0; i < slots; ++i) {
    contexts_.push_back(std::make_unique<engine::SolveContext>(circuit, structure));
  }
  if (options_.threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(static_cast<unsigned>(options_.threads));
  }

  // Intra-solve parallelism: ONE shared worker pool serves both colored
  // assembly and level-scheduled LU refactorization (they alternate within a
  // Newton iteration, never overlap).  This pool is distinct from pool_
  // (whose workers run whole pipelined solves and block on intra-solve
  // futures — a shared pool there would deadlock).
  const int intra_threads = std::max(options_.assembly_threads, options_.factor_threads);
  if (intra_threads > 1) {
    intra_pool_ = std::make_unique<util::ThreadPool>(static_cast<unsigned>(intra_threads));
  }

  // Colored assembly: let the cost model decide, but only attach a COLORED
  // assembler.  The reduction fallback owns private buffers and can't serve
  // concurrent contexts — if the graph isn't profitably colorable, pipelined
  // solves keep the plain serial device loop.
  if (options_.assembly_threads > 1) {
    auto assembler =
        parallel::MakeAssembler(parallel::AssemblyMode::kAuto, circuit, structure,
                                options_.assembly_threads, {}, intra_pool_.get());
    if (std::strcmp(assembler->stats().strategy, "colored") == 0) {
      assembler_ = std::move(assembler);
      for (auto& ctx : contexts_) ctx->assembler = assembler_.get();
    }
  }

  // Level-scheduled LU: per-context opt-in; the per-level cost model inside
  // SparseLu still falls back to the serial kernels when levels are thin.
  if (options_.factor_threads > 1) {
    for (auto& ctx : contexts_) ctx->factor_pool = intra_pool_.get();
  }

  // Latency bypass / chord Newton: per-context caches and factor-reuse
  // state, so pipelined solves on different contexts never share them.
  for (auto& ctx : contexts_) ctx->ConfigureAcceleration(options_.sim);
  if (options_.sim.ordering_cache != nullptr) {
    for (auto& ctx : contexts_) ctx->lu.set_ordering_cache(options_.sim.ordering_cache);
  }
  chord_configured_ = options_.sim.chord_newton;
  for (auto& ctx : contexts_) ctx->record_factor_seeds = sink_.enabled();

  // Domain decomposition: ONE plan computed for the shared pattern, handed
  // to every context (each keeps its own numeric BbdSolver — piece factors
  // are per-context state exactly like ctx.lu).  Piece-parallel factor/solve
  // runs on the intra-solve pool for the same no-deadlock reason as above.
  if (options_.sim.partition_pieces > 0) {
    const auto plan =
        options_.sim.partition_plan != nullptr
            ? options_.sim.partition_plan
            : partition::PartitionPattern(structure.pattern(),
                                          options_.sim.partition_pieces);
    for (auto& ctx : contexts_) ctx->ConfigurePartition(plan);
  }
}

bool PipelineDriver::Done() const {
  return engine::TransientHorizonReached(history_.newest_time(), spec_.tstop);
}

WavePipeResult PipelineDriver::Run() {
  // The round loop is telemetry lane 0; each context slot's solves land on
  // lane slot+1 (see SubmitSolve), which the Chrome exporter renders as one
  // track per pipeline worker.
  util::telemetry::ScopedLane lane(0, "driver");
  total_timer_.Reset();
  result_.trace = engine::Trace(spec_.probes.size() > 0
                                    ? spec_.probes
                                    : engine::ProbeSet::FirstNodes(circuit_.num_nodes(), 16));
  result_.trace.ReserveEstimate(spec_.tstop - spec_.tstart, limits_.hmin);

  // Stall watchdog sources: every context's Newton heartbeat plus the worker
  // pool's task counters — the sampling window sees both stuck solves and a
  // wedged pool.
  for (auto& ctx : contexts_) watchdog_.AddSource(&ctx->heartbeat);
  if (pool_) {
    watchdog_.AddSource(&pool_->tasks_started_heartbeat());
    watchdog_.AddSource(&pool_->tasks_completed_heartbeat());
  }
  watchdog_.Start();

  if (options_.sim.resilience.resume != nullptr) {
    // Resume at the round barrier the checkpoint captured; the DC operating
    // point is already inside the restored history/trace/ledger.
    RestoreFromCheckpoint(*options_.sim.resilience.resume);
  } else {
    // Sequential prologue: DC operating point on context 0.
    engine::SolveContext& ctx0 = *contexts_[0];
    util::ThreadCpuTimer dc_timer;
    engine::DcopResult dcop;
    try {
      dcop = engine::SolveDcOperatingPoint(ctx0, options_.sim, spec_.initial_conditions);
    } catch (const Error& error) {
      watchdog_.Finish();
      result_.completed = false;
      result_.abort_reason = error.what();
      result_.last_good_time = spec_.tstart;
      result_.stats.wall_seconds = total_timer_.Seconds();
      return std::move(result_);
    }
    result_.stats.dcop_strategy = dcop.strategy;

    SolveRecord dc_record;
    dc_record.kind = SolveKind::kDcop;
    dc_record.time_point = spec_.tstart;
    dc_record.seconds = dc_timer.Seconds();
    dc_record.newton_iterations = dcop.newton.iterations;
    const int dc_id = result_.ledger.Add(dc_record);

    // Seed history/trace with the operating point.  Not counted as an
    // accepted step (the serial engine doesn't count it either).
    const engine::SolutionPointPtr dc_point = engine::MakeDcSolutionPoint(ctx0, spec_.tstart);
    history_.Add(dc_point);
    ledger_id_of_point_[dc_point.get()] = dc_id;
    result_.trace.Record(dc_point->time, dc_point->x, dc_point->q);
    result_.final_point = dc_point;

    h_ = limits_.h0;
    restart_ = true;
    steps_since_restart_ = 0;
    last_leading_time_ = spec_.tstart;
  }

  while (!Done() && !aborted_) {
    result_.sched.rounds += 1;
    Scheme scheme = options_.scheme;
    // Quarantine: after repeated leading failures the pipelined schemes run
    // their cooldown rounds through the serial path — same LTE test, same
    // acceptance, just no speculative helpers multiplying the blast radius.
    if (quarantine_rounds_left_ > 0 && scheme != Scheme::kSerial) {
      scheme = Scheme::kSerial;
      --quarantine_rounds_left_;
      result_.sched.quarantined_rounds += 1;
    }
    switch (scheme) {
      case Scheme::kSerial: {
        WP_TSPAN("round", "serial");
        RunRoundSerial();
        break;
      }
      case Scheme::kBackward: {
        WP_TSPAN("round", "bwp");
        RunRoundBackward();
        break;
      }
      case Scheme::kForward: {
        WP_TSPAN("round", "fwp");
        RunRoundForward();
        break;
      }
      case Scheme::kCombined: {
        WP_TSPAN("round", "combined");
        RunRoundCombined();
        break;
      }
    }
    // Rounds are the pipeline's quiescent checkpoint boundaries: every solve
    // joined, only the driver thread alive.
    RoundBarrier();
  }

  result_.completed = !aborted_;
  result_.abort_reason = abort_reason_;
  result_.last_good_time = history_.newest_time();
  result_.spec = policy_.stats();

  watchdog_.Finish();
  // One final snapshot on EVERY exit (completion, budget, watchdog, rescue
  // exhaustion) — the newest round barrier is always resumable.  Runs BEFORE
  // the absorption below: Snapshot() folds context stats into its own copy.
  sink_.WriteFinal([this] { return Snapshot(); });

  result_.stats.wall_seconds = total_timer_.Seconds();
  if (assembler_) result_.assembly = assembler_->stats();
  for (std::size_t i = 0; i < contexts_.size(); ++i) {
    const auto& ctx = contexts_[i];
    result_.stats.AbsorbLuStats(ctx->lu.stats());
    if (ctx->bbd.configured()) result_.stats.AbsorbPartitionStats(NetBbdStats(i));
    result_.stats.bypassed_evals += ctx->bypass.bypassed_evals();
    result_.stats.bypass_full_evals += ctx->bypass.full_evals();
  }
  return std::move(result_);
}

PipelineDriver::Clip PipelineDriver::ClipStep(double t_from, double h) {
  return engine::ClipStepToSchedule(t_from, h, spec_.tstop, breakpoints_,
                                    next_breakpoint_, limits_.hmin);
}

engine::StepSolveResult PipelineDriver::JoinSolve(
    std::future<engine::StepSolveResult>& future) {
  try {
    return future.get();
  } catch (const Error& error) {
    // A worker task threw (injected fault, singular pivot, poisoned model
    // evaluation).  Drain it into a failed solve: the round's normal
    // failure handling owns the policy, and no sibling future is abandoned.
    result_.sched.drained_task_errors += 1;
    engine::StepSolveResult failed;
    failed.converged = false;
    failed.failure = error.what();
    return failed;
  } catch (const std::future_error& error) {
    result_.sched.drained_task_errors += 1;
    engine::StepSolveResult failed;
    failed.converged = false;
    failed.failure = std::string("future error: ") + error.what();
    return failed;
  }
}

std::future<engine::StepSolveResult> PipelineDriver::SubmitSolve(
    int slot, engine::HistoryWindow window, double t_new, bool restart,
    std::vector<double> seed_x) {
  WP_ASSERT(slot >= 0 && slot < static_cast<int>(contexts_.size()));
  engine::SolveContext* ctx = contexts_[static_cast<std::size_t>(slot)].get();
  const engine::Method method = options_.sim.method;
  const engine::SimOptions sim = options_.sim;

  auto task = [ctx, slot, window = std::move(window), t_new, method, restart, sim,
               seed = std::move(seed_x)]() {
    util::telemetry::ScopedLane lane(static_cast<std::uint32_t>(slot) + 1,
                                     "slot-" + std::to_string(slot));
    return engine::SolveTimePoint(*ctx, window, t_new, method, restart, sim, seed);
  };
  if (pool_) return pool_->Submit(std::move(task));
  // Single-threaded: run inline but keep the future-based interface.
  std::promise<engine::StepSolveResult> promise;
  promise.set_value(task());
  return promise.get_future();
}

std::vector<int> PipelineDriver::DepsOf(const engine::HistoryWindow& window) const {
  std::vector<int> deps;
  deps.reserve(window.size());
  for (const auto& point : window) {
    const auto it = ledger_id_of_point_.find(point.get());
    if (it != ledger_id_of_point_.end()) deps.push_back(it->second);
  }
  return deps;
}

bool PipelineDriver::RepairWorthwhile() const {
  // Warm-up: gather a few repair samples before judging.
  if (repair_samples_ < 8) return true;
  return avg_repair_iters_ + 0.5 < avg_lead_iters_;
}

void PipelineDriver::CountSchemeSpeculation(bool accepted) {
  if (options_.scheme == Scheme::kForward) {
    result_.sched.fwp_speculative_solves += 1;
    if (accepted) result_.sched.fwp_speculative_accepted += 1;
  } else if (options_.scheme == Scheme::kCombined) {
    result_.sched.combined_speculative_solves += 1;
    if (accepted) result_.sched.combined_speculative_accepted += 1;
  }
}

void PipelineDriver::CountSchemeBackward() {
  if (options_.scheme == Scheme::kBackward) {
    result_.sched.bwp_backward_solves += 1;
  } else if (options_.scheme == Scheme::kCombined) {
    result_.sched.combined_backward_solves += 1;
  }
}

int PipelineDriver::Record(SolveKind kind, const engine::StepSolveResult& solve,
                           std::vector<int> deps, bool useful) {
  constexpr double kEma = 0.05;
  if (kind == SolveKind::kLeading) {
    avg_lead_iters_ = avg_lead_iters_ == 0.0
                          ? solve.newton.iterations
                          : (1 - kEma) * avg_lead_iters_ + kEma * solve.newton.iterations;
    policy_.OnLeadCost(solve.newton.iterations);
  } else if (kind == SolveKind::kRepair) {
    avg_repair_iters_ =
        avg_repair_iters_ == 0.0
            ? solve.newton.iterations
            : (1 - kEma) * avg_repair_iters_ + kEma * solve.newton.iterations;
    ++repair_samples_;
    policy_.OnRepairCost(solve.newton.iterations);
  }
  SolveRecord record;
  record.kind = kind;
  record.time_point = solve.point ? solve.point->time : 0.0;
  record.seconds = solve.solve_seconds;
  record.newton_iterations = solve.newton.iterations;
  record.deps = std::move(deps);
  record.useful = useful;

  result_.stats.newton_iterations += static_cast<std::uint64_t>(solve.newton.iterations);
  result_.stats.lu_full_factors += static_cast<std::uint64_t>(solve.newton.lu_full_factors);
  result_.stats.lu_refactors += static_cast<std::uint64_t>(solve.newton.lu_refactors);
  result_.stats.chord_solves += static_cast<std::uint64_t>(solve.newton.chord_solves);
  result_.stats.forced_refactors += static_cast<std::uint64_t>(solve.newton.forced_refactors);
  process_newton_ += static_cast<std::uint64_t>(solve.newton.iterations);
  return result_.ledger.Add(std::move(record));
}

void PipelineDriver::AcceptPoint(const engine::SolutionPointPtr& point, int ledger_id,
                                 bool leading) {
  history_.Add(point);
  ledger_id_of_point_[point.get()] = ledger_id;
  // Prune map entries for points that fell out of the bounded history.
  if (ledger_id_of_point_.size() > 4 * static_cast<std::size_t>(options_.sim.history_depth)) {
    std::map<const engine::SolutionPoint*, int> kept;
    for (int i = 0; i < history_.size(); ++i) {
      const auto* raw = history_.FromNewest(i).get();
      const auto it = ledger_id_of_point_.find(raw);
      if (it != ledger_id_of_point_.end()) kept.emplace(raw, it->second);
    }
    ledger_id_of_point_ = std::move(kept);
  }
  if (leading) {
    result_.trace.Record(point->time, point->x, point->q);
    result_.stats.steps_accepted += 1;
    ++process_steps_;
    result_.final_point = point;

    // Bypass step-floor safety valve (same rule as the serial engine): a
    // sustained run of leading accepts pinned at hmin with replay active
    // means the replay wobble exceeded the deck's LTE budget — shut the
    // bypass off on every context and let the step size recover.
    if (contexts_[0]->bypass.active()) {
      if (point->time - last_leading_time_ <=
          limits_.hmin * engine::DeviceBypass::kFloorWindow) {
        if (++floor_streak_ >= engine::DeviceBypass::kFloorStreakLimit) {
          for (auto& ctx : contexts_) ctx->bypass.Disable();
          result_.stats.bypass_auto_disables += 1;
        }
      } else {
        floor_streak_ = 0;
      }
    }
    last_leading_time_ = point->time;
  }
}

void PipelineDriver::MaybeQuarantine() {
  if (options_.scheme == Scheme::kSerial) return;
  if (consecutive_failures_ < options_.quarantine_threshold) return;
  if (quarantine_rounds_left_ == 0) result_.sched.quarantine_activations += 1;
  quarantine_rounds_left_ = options_.quarantine_rounds;
  consecutive_failures_ = 0;
}

void PipelineDriver::OnNewtonFailure(double attempted_h,
                                     const engine::StepSolveResult& solve,
                                     std::vector<int> deps) {
  result_.stats.steps_rejected_newton += 1;
  Record(SolveKind::kRejected, solve, std::move(deps), /*useful=*/false);
  if (breakers_.enabled()) {
    ApplyBreakerTrips(breakers_.OnSolveOutcome(ActiveFeatureMask(),
                                               /*converged=*/false,
                                               solve.solve_seconds));
  }
  ++consecutive_failures_;
  MaybeQuarantine();
  h_ = attempted_h / options_.sim.newton_fail_shrink;
  if (h_ >= limits_.hmin) return;

  // Step shrinking is out of road — the historical hard-throw point.  Climb
  // the rescue ladder for one minimal step on the leading context before
  // declaring the run dead, and even then return a structured abort that
  // keeps the partial trace/ledger instead of unwinding through the rounds.
  const double t_now = history_.newest_time();
  const double t_rescue = std::min(t_now + limits_.hmin, spec_.tstop);
  const engine::HistoryWindow window = history_.Window(4);
  engine::RescueOutcome rescue =
      engine::AttemptRescue(*contexts_[0], window, t_rescue, options_.sim, result_.stats);
  if (rescue.rescued) {
    const int id =
        Record(SolveKind::kLeading, rescue.solve, DepsOf(window), /*useful=*/true);
    AcceptPoint(rescue.solve.point, id, /*leading=*/true);
    // The rescued point is a BE restart: rebuild the local history from it
    // exactly as after a breakpoint, at the fresh-start step size.
    restart_ = true;
    steps_since_restart_ = 0;
    h_ = limits_.h0;
    last_growth_factor_ = 1.0;
    return;
  }
  aborted_ = true;
  abort_reason_ = "wavepipe: Newton failure with step at hmin, t = " +
                  std::to_string(t_now) +
                  (solve.failure.empty() ? "" : " (" + solve.failure + ")") +
                  "; rescue ladder exhausted: " + rescue.attempts;
}

void PipelineDriver::OnLteRejection(const engine::StepAssessment& assess,
                                    double attempted_h) {
  (void)attempted_h;
  result_.stats.steps_rejected_lte += 1;
  policy_.OnLteRejection();
  h_ = std::max(assess.h_next, limits_.hmin);
  bwp_cooldown_ = 1;
}

void PipelineDriver::OnLeadingAccepted(const engine::StepAssessment& assess,
                                       bool hit_breakpoint, double growth_cap,
                                       double h_used, bool update_step_control) {
  (void)growth_cap;
  if (bwp_cooldown_ > 0) --bwp_cooldown_;
  policy_.OnLeadingAccepted();
  if (breakers_.enabled()) {
    // A converged leading solve clears every participating feature's
    // consecutive-failure count (never trips).
    (void)breakers_.OnSolveOutcome(ActiveFeatureMask(), /*converged=*/true, 0.0);
  }
  consecutive_failures_ = 0;  // a clean leading accept ends the failure streak
  ++steps_since_restart_;
  restart_ = false;
  if (hit_breakpoint) {
    ++next_breakpoint_;
    restart_ = true;
    steps_since_restart_ = 0;
    h_ = limits_.h0;
    last_growth_factor_ = 1.0;
    return;
  }
  if (!update_step_control) return;
  if (h_used > 0.0) {
    last_growth_factor_ = std::clamp(assess.h_next / h_used, 0.5, 4.0);
  }
  h_ = std::clamp(assess.h_next, limits_.hmin, limits_.hmax);
}

engine::StepControlParams PipelineDriver::ParamsWithCap(int order, double cap) const {
  engine::StepControlParams params =
      engine::MakeStepParams(options_.sim, circuit_.num_nodes(), order);
  params.growth_cap = cap;
  return params;
}

int PipelineDriver::BackwardPointCount() const {
  if (restart_ || steps_since_restart_ < 1 || history_.size() < 2) return 0;
  // The trailing interval is already densified (a rejected round keeps its
  // backward points in history); piling more points into it adds cost and
  // numerical noise, never information.
  if (history_.FromNewest(1)->auxiliary) return 0;
  // After an LTE rejection the local error estimate just proved optimistic;
  // run one round at the serial cap before trusting the raised one again.
  if (bwp_cooldown_ > 0) return 0;
  int helpers = 0;
  switch (options_.scheme) {
    case Scheme::kBackward: helpers = options_.threads - 1; break;
    case Scheme::kCombined: helpers = 1; break;
    default: return 0;
  }
  return std::clamp(helpers, 0, static_cast<int>(options_.bwp_growth_caps.size()));
}

double PipelineDriver::BwpGrowthCap(int backward_points) const {
  if (backward_points <= 0) return options_.sim.step_growth;
  const std::size_t index =
      std::min(static_cast<std::size_t>(backward_points) - 1,
               options_.bwp_growth_caps.size() - 1);
  return options_.bwp_growth_caps[index];
}

// ---------------------------------------------------------------------------
// Durable-run machinery (engine/resilience.hpp)
// ---------------------------------------------------------------------------

namespace {
/// PipelineSchedStats fields packed ahead of the SpeculationPolicy state in
/// TransientCheckpoint::sched_u64 (fixed order — part of the ckpt format).
constexpr std::size_t kSchedU64Fields = 17;
}  // namespace

void PipelineDriver::PackSched(std::vector<std::uint64_t>& u64,
                               std::vector<double>& f64) const {
  const PipelineSchedStats& s = result_.sched;
  u64.clear();
  f64.clear();
  u64.reserve(kSchedU64Fields + SpeculationPolicy::kStateU64);
  u64.push_back(static_cast<std::uint64_t>(s.rounds));
  u64.push_back(static_cast<std::uint64_t>(s.backward_solves));
  u64.push_back(static_cast<std::uint64_t>(s.speculative_solves));
  u64.push_back(static_cast<std::uint64_t>(s.speculative_accepted));
  u64.push_back(static_cast<std::uint64_t>(s.speculative_direct));
  u64.push_back(static_cast<std::uint64_t>(s.speculative_discarded));
  u64.push_back(static_cast<std::uint64_t>(s.repair_solves));
  u64.push_back(s.repair_newton_iterations);
  u64.push_back(static_cast<std::uint64_t>(s.quarantine_activations));
  u64.push_back(static_cast<std::uint64_t>(s.quarantined_rounds));
  u64.push_back(static_cast<std::uint64_t>(s.drained_task_errors));
  u64.push_back(static_cast<std::uint64_t>(s.fwp_speculative_solves));
  u64.push_back(static_cast<std::uint64_t>(s.fwp_speculative_accepted));
  u64.push_back(static_cast<std::uint64_t>(s.combined_speculative_solves));
  u64.push_back(static_cast<std::uint64_t>(s.combined_speculative_accepted));
  u64.push_back(static_cast<std::uint64_t>(s.bwp_backward_solves));
  u64.push_back(static_cast<std::uint64_t>(s.combined_backward_solves));
  policy_.SaveState(u64, f64);
}

void PipelineDriver::UnpackSched(std::span<const std::uint64_t> u64,
                                 std::span<const double> f64) {
  if (u64.size() != kSchedU64Fields + SpeculationPolicy::kStateU64 ||
      f64.size() != SpeculationPolicy::kStateF64) {
    throw util::CheckpointError("pipeline checkpoint scheduler-state layout mismatch");
  }
  PipelineSchedStats& s = result_.sched;
  std::size_t i = 0;
  s.rounds = static_cast<std::size_t>(u64[i++]);
  s.backward_solves = static_cast<std::size_t>(u64[i++]);
  s.speculative_solves = static_cast<std::size_t>(u64[i++]);
  s.speculative_accepted = static_cast<std::size_t>(u64[i++]);
  s.speculative_direct = static_cast<std::size_t>(u64[i++]);
  s.speculative_discarded = static_cast<std::size_t>(u64[i++]);
  s.repair_solves = static_cast<std::size_t>(u64[i++]);
  s.repair_newton_iterations = u64[i++];
  s.quarantine_activations = static_cast<std::size_t>(u64[i++]);
  s.quarantined_rounds = static_cast<std::size_t>(u64[i++]);
  s.drained_task_errors = static_cast<std::size_t>(u64[i++]);
  s.fwp_speculative_solves = static_cast<std::size_t>(u64[i++]);
  s.fwp_speculative_accepted = static_cast<std::size_t>(u64[i++]);
  s.combined_speculative_solves = static_cast<std::size_t>(u64[i++]);
  s.combined_speculative_accepted = static_cast<std::size_t>(u64[i++]);
  s.bwp_backward_solves = static_cast<std::size_t>(u64[i++]);
  s.combined_backward_solves = static_cast<std::size_t>(u64[i++]);
  policy_.RestoreState(u64.subspan(kSchedU64Fields), f64);
}

sparse::BbdStats PipelineDriver::NetBbdStats(std::size_t i) const {
  sparse::BbdStats s = contexts_[i]->bbd.stats();
  if (i < bbd_prime_base_.size()) {
    const sparse::BbdStats& base = bbd_prime_base_[i];
    s.full_factor_count -= base.full_factor_count;
    s.refactor_count -= base.refactor_count;
    s.solve_count -= base.solve_count;
    s.schur_factor_count -= base.schur_factor_count;
    s.schur_seconds -= base.schur_seconds;
  }
  return s;
}

std::vector<std::uint8_t> PipelineDriver::Snapshot() {
  engine::TransientCheckpoint ck;
  ck.engine = "pipeline";
  ck.scheme = SchemeName(options_.scheme);
  ck.partition_pieces = options_.sim.partition_pieces;
  ck.num_unknowns = static_cast<std::uint64_t>(contexts_[0]->x.size());
  ck.num_probes = result_.trace.probes().size();
  ck.tstop = spec_.tstop;

  ck.h = h_;
  ck.restart = restart_;
  ck.steps_since_restart = static_cast<std::uint64_t>(steps_since_restart_);
  ck.floor_streak = static_cast<std::uint64_t>(floor_streak_);
  ck.next_breakpoint = next_breakpoint_;

  ck.last_leading_time = last_leading_time_;
  ck.bwp_cooldown = static_cast<std::uint64_t>(bwp_cooldown_);
  ck.consecutive_failures = static_cast<std::uint64_t>(consecutive_failures_);
  ck.quarantine_rounds_left = static_cast<std::uint64_t>(quarantine_rounds_left_);
  ck.last_growth_factor = last_growth_factor_;
  ck.avg_lead_iters = avg_lead_iters_;
  ck.avg_repair_iters = avg_repair_iters_;
  ck.repair_samples = static_cast<std::uint64_t>(repair_samples_);
  PackSched(ck.sched_u64, ck.sched_f64);

  ck.ledger.reserve(result_.ledger.size());
  for (const auto& rec : result_.ledger.records()) {
    engine::CheckpointLedgerRecord r;
    r.id = rec.id;
    r.kind = static_cast<std::uint8_t>(rec.kind);
    r.time_point = rec.time_point;
    r.seconds = rec.seconds;
    r.newton_iterations = rec.newton_iterations;
    r.useful = rec.useful;
    r.deps.assign(rec.deps.begin(), rec.deps.end());
    ck.ledger.push_back(std::move(r));
  }

  for (const auto& sp : history_.Window(history_.size())) {
    engine::CheckpointPoint p;
    p.time = sp->time;
    p.x = sp->x;
    p.q = sp->q;
    p.qdot = sp->qdot;
    p.auxiliary = sp->auxiliary;
    const auto it = ledger_id_of_point_.find(sp.get());
    p.ledger_id = it != ledger_id_of_point_.end() ? it->second : -1;
    ck.history.push_back(std::move(p));
  }

  // Solver stats absorbed into the snapshot COPY so the live tallies keep
  // accumulating raw (the epilogue absorbs them exactly once).
  ck.stats = result_.stats;
  for (std::size_t i = 0; i < contexts_.size(); ++i) {
    ck.stats.AbsorbLuStats(contexts_[i]->lu.stats());
    if (contexts_[i]->bbd.configured()) ck.stats.AbsorbPartitionStats(NetBbdStats(i));
    ck.stats.bypassed_evals += contexts_[i]->bypass.bypassed_evals();
    ck.stats.bypass_full_evals += contexts_[i]->bypass.full_evals();
  }
  ck.stats.wall_seconds = total_timer_.Seconds();

  for (const auto& ctx : contexts_) {
    engine::CheckpointContextSeeds seeds;
    seeds.lu_full = ctx->lu_seeds.full;
    seeds.lu_numeric = ctx->lu_seeds.numeric;
    seeds.bbd_full = ctx->bbd_seeds.full;
    seeds.bbd_numeric = ctx->bbd_seeds.numeric;
    ck.context_seeds.push_back(std::move(seeds));
  }

  ck.trace_times.assign(result_.trace.times().begin(), result_.trace.times().end());
  const std::size_t stride = result_.trace.probes().size();
  ck.trace_values.reserve(result_.trace.num_samples() * stride);
  for (std::size_t s = 0; s < result_.trace.num_samples(); ++s) {
    for (std::size_t p = 0; p < stride; ++p) {
      ck.trace_values.push_back(result_.trace.value(s, p));
    }
  }
  return engine::SerializeCheckpoint(ck);
}

void PipelineDriver::RestoreFromCheckpoint(const engine::TransientCheckpoint& ck) {
  engine::ValidateResume(ck, "pipeline", SchemeName(options_.scheme),
                         options_.sim.partition_pieces,
                         static_cast<std::uint64_t>(contexts_[0]->x.size()),
                         result_.trace.probes().size(), spec_.tstop);
  if (ck.context_seeds.size() != contexts_.size()) {
    throw util::CheckpointError(
        "pipeline checkpoint carries " + std::to_string(ck.context_seeds.size()) +
        " context slots, this run has " + std::to_string(contexts_.size()) +
        " (thread/policy configuration differs)");
  }
  UnpackSched(ck.sched_u64, ck.sched_f64);
  result_.resilience.ckpt_resumed = 1;
  result_.stats = ck.stats;

  for (const auto& rec : ck.ledger) {
    SolveRecord r;
    r.kind = static_cast<SolveKind>(rec.kind);
    r.time_point = rec.time_point;
    r.seconds = rec.seconds;
    r.newton_iterations = static_cast<int>(rec.newton_iterations);
    r.useful = rec.useful;
    r.deps.assign(rec.deps.begin(), rec.deps.end());
    const int id = result_.ledger.Add(std::move(r));
    if (id != static_cast<int>(rec.id)) {
      throw util::CheckpointError("pipeline checkpoint ledger ids not contiguous");
    }
  }

  for (const auto& p : ck.history) {
    auto point = std::make_shared<engine::SolutionPoint>();
    point->time = p.time;
    point->x = p.x;
    point->q = p.q;
    point->qdot = p.qdot;
    point->auxiliary = p.auxiliary;
    if (p.ledger_id >= 0) {
      ledger_id_of_point_[point.get()] = static_cast<int>(p.ledger_id);
    }
    history_.Add(std::move(point));
  }

  const std::size_t stride = result_.trace.probes().size();
  for (std::size_t s = 0; s < ck.trace_times.size(); ++s) {
    result_.trace.AppendProbeSample(
        ck.trace_times[s],
        std::span<const double>(ck.trace_values).subspan(s * stride, stride));
  }
  result_.final_point = history_.newest();
  result_.last_good_time = history_.newest_time();

  h_ = ck.h;
  restart_ = ck.restart;
  steps_since_restart_ = static_cast<int>(ck.steps_since_restart);
  floor_streak_ = static_cast<int>(ck.floor_streak);
  next_breakpoint_ = ck.next_breakpoint;
  last_leading_time_ = ck.last_leading_time;
  bwp_cooldown_ = static_cast<int>(ck.bwp_cooldown);
  consecutive_failures_ = static_cast<int>(ck.consecutive_failures);
  quarantine_rounds_left_ = static_cast<int>(ck.quarantine_rounds_left);
  last_growth_factor_ = ck.last_growth_factor;
  avg_lead_iters_ = ck.avg_lead_iters;
  avg_repair_iters_ = ck.avg_repair_iters;
  repair_samples_ = static_cast<int>(ck.repair_samples);

  // Prime every context's linear solvers from its replay seeds so the first
  // post-resume solve on each slot REFACTORS exactly like the uninterrupted
  // run (see FactorSeeds).  The factor counters this spends are bookkeeping,
  // not simulation work — keep them out of the absorbed stats.
  bbd_prime_base_.assign(contexts_.size(), sparse::BbdStats{});
  for (std::size_t i = 0; i < contexts_.size(); ++i) {
    const engine::CheckpointContextSeeds& seeds = ck.context_seeds[i];
    contexts_[i]->PrimeFactorsFromSeeds(
        engine::FactorSeeds{seeds.lu_full, seeds.lu_numeric},
        engine::FactorSeeds{seeds.bbd_full, seeds.bbd_numeric});
    if (contexts_[i]->bbd.configured()) bbd_prime_base_[i] = contexts_[i]->bbd.stats();
  }
}

std::uint64_t PipelineDriver::ActiveFeatureMask() const {
  std::uint64_t mask = 0;
  if (options_.sim.chord_newton) mask |= engine::FeatureBit(engine::Feature::kChord);
  if (contexts_[0]->bypass.active()) mask |= engine::FeatureBit(engine::Feature::kBypass);
  if (contexts_[0]->partition_active()) {
    mask |= engine::FeatureBit(engine::Feature::kPartition);
  }
  if (contexts_[0]->factor_pool != nullptr) {
    mask |= engine::FeatureBit(engine::Feature::kParallelFactor);
  }
  if (contexts_[0]->assembler != nullptr) {
    mask |= engine::FeatureBit(engine::Feature::kParallelAssembly);
  }
  return mask;
}

void PipelineDriver::ApplyBreakerTrips(std::uint64_t tripped) {
  if (tripped == 0) return;
  if (tripped & engine::FeatureBit(engine::Feature::kChord)) {
    options_.sim.chord_newton = false;
  }
  if (tripped & engine::FeatureBit(engine::Feature::kBypass)) {
    for (auto& ctx : contexts_) ctx->bypass.Disable();
  }
  if (tripped & engine::FeatureBit(engine::Feature::kPartition)) {
    for (auto& ctx : contexts_) ctx->DisengagePartition();
  }
  if (tripped & engine::FeatureBit(engine::Feature::kParallelFactor)) {
    for (auto& ctx : contexts_) ctx->factor_pool = nullptr;
  }
  if (tripped & engine::FeatureBit(engine::Feature::kParallelAssembly)) {
    for (auto& ctx : contexts_) ctx->assembler = nullptr;
  }
}

void PipelineDriver::RoundBarrier() {
  if (breakers_.enabled()) {
    // Cooldown ticks once per round (the pipeline's acceptance unit).
    const std::uint64_t reprobe = breakers_.OnAcceptedStep();
    if (reprobe & engine::FeatureBit(engine::Feature::kChord)) {
      options_.sim.chord_newton = chord_configured_;
    }
    if (reprobe & engine::FeatureBit(engine::Feature::kPartition)) {
      for (auto& ctx : contexts_) ctx->ReengagePartition();
    }
    if ((reprobe & engine::FeatureBit(engine::Feature::kParallelFactor)) &&
        intra_pool_ && options_.factor_threads > 1) {
      for (auto& ctx : contexts_) ctx->factor_pool = intra_pool_.get();
    }
    if ((reprobe & engine::FeatureBit(engine::Feature::kParallelAssembly)) && assembler_) {
      for (auto& ctx : contexts_) ctx->assembler = assembler_.get();
    }
    // No bypass re-probe: DeviceBypass::Disable is terminal, matching the
    // step-floor safety valve's one-way semantics.
  }
  sink_.MaybeWrite(process_steps_, [this] { return Snapshot(); });
  if (aborted_) return;  // the round's own abort reason wins
  if (watchdog_.ShouldAbort()) {
    ++result_.resilience.watchdog_escalations;
    aborted_ = true;
    abort_reason_ = watchdog_.AbortReason();
    return;
  }
  const std::string budget_reason =
      budget_.Exceeded(process_steps_, process_newton_, total_timer_.Seconds());
  if (!budget_reason.empty()) {
    result_.resilience.budget_exhausted = 1;
    aborted_ = true;
    abort_reason_ = budget_reason;
  }
}

WavePipeResult RunWavePipe(const engine::Circuit& circuit,
                           const engine::MnaStructure& structure,
                           const engine::TransientSpec& spec,
                           const WavePipeOptions& options) {
  PipelineDriver driver(circuit, structure, spec, options);
  return driver.Run();
}

}  // namespace wavepipe::pipeline
