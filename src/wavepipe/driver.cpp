#include "wavepipe/driver.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "engine/rescue.hpp"
#include "parallel/coloring.hpp"
#include "partition/partitioner.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/telemetry.hpp"
#include "util/timer.hpp"

namespace wavepipe::pipeline {

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kSerial: return "serial";
    case Scheme::kBackward: return "bwp";
    case Scheme::kForward: return "fwp";
    case Scheme::kCombined: return "combined";
  }
  return "?";
}

PipelineDriver::PipelineDriver(const engine::Circuit& circuit,
                               const engine::MnaStructure& structure,
                               const engine::TransientSpec& spec,
                               const WavePipeOptions& options)
    : circuit_(circuit),
      structure_(structure),
      spec_(spec),
      options_(options),
      limits_(engine::StepLimits::FromSpec(spec, options.sim)),
      history_(options.sim.history_depth) {
  WP_ASSERT(options_.threads >= 1);
  if (options_.scheme == Scheme::kSerial) options_.threads = 1;
  if (options_.scheme == Scheme::kCombined && options_.threads < 3) {
    // Combined needs one backward + one forward helper; degrade gracefully.
    options_.threads = 3;
  }
  breakpoints_ = circuit.CollectBreakpoints(spec.tstart, spec.tstop);
  policy_ = SpeculationPolicy(options_.spec_policy, options_.bwp_backward_fraction);

  // Fixed mode keeps one context per thread (slot indices never exceed the
  // thread count).  The adaptive policy may speculate deeper than the thread
  // count — the extra solves queue on the same pool — so it needs a context
  // slot for the deepest chain plus the leading solve and backward helpers.
  int slots = options_.threads;
  if (policy_.adaptive() && options_.scheme != Scheme::kSerial) {
    slots = std::max(slots, 3 + policy_.options().max_depth);
  }
  contexts_.reserve(static_cast<std::size_t>(slots));
  for (int i = 0; i < slots; ++i) {
    contexts_.push_back(std::make_unique<engine::SolveContext>(circuit, structure));
  }
  if (options_.threads > 1) {
    pool_ = std::make_unique<util::ThreadPool>(static_cast<unsigned>(options_.threads));
  }

  // Intra-solve parallelism: ONE shared worker pool serves both colored
  // assembly and level-scheduled LU refactorization (they alternate within a
  // Newton iteration, never overlap).  This pool is distinct from pool_
  // (whose workers run whole pipelined solves and block on intra-solve
  // futures — a shared pool there would deadlock).
  const int intra_threads = std::max(options_.assembly_threads, options_.factor_threads);
  if (intra_threads > 1) {
    intra_pool_ = std::make_unique<util::ThreadPool>(static_cast<unsigned>(intra_threads));
  }

  // Colored assembly: let the cost model decide, but only attach a COLORED
  // assembler.  The reduction fallback owns private buffers and can't serve
  // concurrent contexts — if the graph isn't profitably colorable, pipelined
  // solves keep the plain serial device loop.
  if (options_.assembly_threads > 1) {
    auto assembler =
        parallel::MakeAssembler(parallel::AssemblyMode::kAuto, circuit, structure,
                                options_.assembly_threads, {}, intra_pool_.get());
    if (std::strcmp(assembler->stats().strategy, "colored") == 0) {
      assembler_ = std::move(assembler);
      for (auto& ctx : contexts_) ctx->assembler = assembler_.get();
    }
  }

  // Level-scheduled LU: per-context opt-in; the per-level cost model inside
  // SparseLu still falls back to the serial kernels when levels are thin.
  if (options_.factor_threads > 1) {
    for (auto& ctx : contexts_) ctx->factor_pool = intra_pool_.get();
  }

  // Latency bypass / chord Newton: per-context caches and factor-reuse
  // state, so pipelined solves on different contexts never share them.
  for (auto& ctx : contexts_) ctx->ConfigureAcceleration(options_.sim);

  // Domain decomposition: ONE plan computed for the shared pattern, handed
  // to every context (each keeps its own numeric BbdSolver — piece factors
  // are per-context state exactly like ctx.lu).  Piece-parallel factor/solve
  // runs on the intra-solve pool for the same no-deadlock reason as above.
  if (options_.sim.partition_pieces > 0) {
    const auto plan =
        partition::PartitionPattern(structure.pattern(), options_.sim.partition_pieces);
    for (auto& ctx : contexts_) ctx->ConfigurePartition(plan);
  }
}

bool PipelineDriver::Done() const {
  return engine::TransientHorizonReached(history_.newest_time(), spec_.tstop);
}

WavePipeResult PipelineDriver::Run() {
  // The round loop is telemetry lane 0; each context slot's solves land on
  // lane slot+1 (see SubmitSolve), which the Chrome exporter renders as one
  // track per pipeline worker.
  util::telemetry::ScopedLane lane(0, "driver");
  util::WallTimer total_timer;
  result_.trace = engine::Trace(spec_.probes.size() > 0
                                    ? spec_.probes
                                    : engine::ProbeSet::FirstNodes(circuit_.num_nodes(), 16));
  result_.trace.ReserveEstimate(spec_.tstop - spec_.tstart, limits_.hmin);

  // Sequential prologue: DC operating point on context 0.
  engine::SolveContext& ctx0 = *contexts_[0];
  util::ThreadCpuTimer dc_timer;
  engine::DcopResult dcop;
  try {
    dcop = engine::SolveDcOperatingPoint(ctx0, options_.sim, spec_.initial_conditions);
  } catch (const Error& error) {
    result_.completed = false;
    result_.abort_reason = error.what();
    result_.last_good_time = spec_.tstart;
    result_.stats.wall_seconds = total_timer.Seconds();
    return std::move(result_);
  }
  result_.stats.dcop_strategy = dcop.strategy;

  SolveRecord dc_record;
  dc_record.kind = SolveKind::kDcop;
  dc_record.time_point = spec_.tstart;
  dc_record.seconds = dc_timer.Seconds();
  dc_record.newton_iterations = dcop.newton.iterations;
  const int dc_id = result_.ledger.Add(dc_record);

  // Seed history/trace with the operating point.  Not counted as an
  // accepted step (the serial engine doesn't count it either).
  const engine::SolutionPointPtr dc_point = engine::MakeDcSolutionPoint(ctx0, spec_.tstart);
  history_.Add(dc_point);
  ledger_id_of_point_[dc_point.get()] = dc_id;
  result_.trace.Record(dc_point->time, dc_point->x);
  result_.final_point = dc_point;

  h_ = limits_.h0;
  restart_ = true;
  steps_since_restart_ = 0;
  last_leading_time_ = spec_.tstart;

  while (!Done() && !aborted_) {
    result_.sched.rounds += 1;
    Scheme scheme = options_.scheme;
    // Quarantine: after repeated leading failures the pipelined schemes run
    // their cooldown rounds through the serial path — same LTE test, same
    // acceptance, just no speculative helpers multiplying the blast radius.
    if (quarantine_rounds_left_ > 0 && scheme != Scheme::kSerial) {
      scheme = Scheme::kSerial;
      --quarantine_rounds_left_;
      result_.sched.quarantined_rounds += 1;
    }
    switch (scheme) {
      case Scheme::kSerial: {
        WP_TSPAN("round", "serial");
        RunRoundSerial();
        break;
      }
      case Scheme::kBackward: {
        WP_TSPAN("round", "bwp");
        RunRoundBackward();
        break;
      }
      case Scheme::kForward: {
        WP_TSPAN("round", "fwp");
        RunRoundForward();
        break;
      }
      case Scheme::kCombined: {
        WP_TSPAN("round", "combined");
        RunRoundCombined();
        break;
      }
    }
  }

  result_.completed = !aborted_;
  result_.abort_reason = abort_reason_;
  result_.last_good_time = history_.newest_time();
  result_.spec = policy_.stats();
  result_.stats.wall_seconds = total_timer.Seconds();
  if (assembler_) result_.assembly = assembler_->stats();
  for (const auto& ctx : contexts_) {
    result_.stats.AbsorbLuStats(ctx->lu.stats());
    if (ctx->partition_active()) result_.stats.AbsorbPartitionStats(ctx->bbd.stats());
    result_.stats.bypassed_evals += ctx->bypass.bypassed_evals();
    result_.stats.bypass_full_evals += ctx->bypass.full_evals();
  }
  return std::move(result_);
}

PipelineDriver::Clip PipelineDriver::ClipStep(double t_from, double h) {
  return engine::ClipStepToSchedule(t_from, h, spec_.tstop, breakpoints_,
                                    next_breakpoint_, limits_.hmin);
}

engine::StepSolveResult PipelineDriver::JoinSolve(
    std::future<engine::StepSolveResult>& future) {
  try {
    return future.get();
  } catch (const Error& error) {
    // A worker task threw (injected fault, singular pivot, poisoned model
    // evaluation).  Drain it into a failed solve: the round's normal
    // failure handling owns the policy, and no sibling future is abandoned.
    result_.sched.drained_task_errors += 1;
    engine::StepSolveResult failed;
    failed.converged = false;
    failed.failure = error.what();
    return failed;
  } catch (const std::future_error& error) {
    result_.sched.drained_task_errors += 1;
    engine::StepSolveResult failed;
    failed.converged = false;
    failed.failure = std::string("future error: ") + error.what();
    return failed;
  }
}

std::future<engine::StepSolveResult> PipelineDriver::SubmitSolve(
    int slot, engine::HistoryWindow window, double t_new, bool restart,
    std::vector<double> seed_x) {
  WP_ASSERT(slot >= 0 && slot < static_cast<int>(contexts_.size()));
  engine::SolveContext* ctx = contexts_[static_cast<std::size_t>(slot)].get();
  const engine::Method method = options_.sim.method;
  const engine::SimOptions sim = options_.sim;

  auto task = [ctx, slot, window = std::move(window), t_new, method, restart, sim,
               seed = std::move(seed_x)]() {
    util::telemetry::ScopedLane lane(static_cast<std::uint32_t>(slot) + 1,
                                     "slot-" + std::to_string(slot));
    return engine::SolveTimePoint(*ctx, window, t_new, method, restart, sim, seed);
  };
  if (pool_) return pool_->Submit(std::move(task));
  // Single-threaded: run inline but keep the future-based interface.
  std::promise<engine::StepSolveResult> promise;
  promise.set_value(task());
  return promise.get_future();
}

std::vector<int> PipelineDriver::DepsOf(const engine::HistoryWindow& window) const {
  std::vector<int> deps;
  deps.reserve(window.size());
  for (const auto& point : window) {
    const auto it = ledger_id_of_point_.find(point.get());
    if (it != ledger_id_of_point_.end()) deps.push_back(it->second);
  }
  return deps;
}

bool PipelineDriver::RepairWorthwhile() const {
  // Warm-up: gather a few repair samples before judging.
  if (repair_samples_ < 8) return true;
  return avg_repair_iters_ + 0.5 < avg_lead_iters_;
}

void PipelineDriver::CountSchemeSpeculation(bool accepted) {
  if (options_.scheme == Scheme::kForward) {
    result_.sched.fwp_speculative_solves += 1;
    if (accepted) result_.sched.fwp_speculative_accepted += 1;
  } else if (options_.scheme == Scheme::kCombined) {
    result_.sched.combined_speculative_solves += 1;
    if (accepted) result_.sched.combined_speculative_accepted += 1;
  }
}

void PipelineDriver::CountSchemeBackward() {
  if (options_.scheme == Scheme::kBackward) {
    result_.sched.bwp_backward_solves += 1;
  } else if (options_.scheme == Scheme::kCombined) {
    result_.sched.combined_backward_solves += 1;
  }
}

int PipelineDriver::Record(SolveKind kind, const engine::StepSolveResult& solve,
                           std::vector<int> deps, bool useful) {
  constexpr double kEma = 0.05;
  if (kind == SolveKind::kLeading) {
    avg_lead_iters_ = avg_lead_iters_ == 0.0
                          ? solve.newton.iterations
                          : (1 - kEma) * avg_lead_iters_ + kEma * solve.newton.iterations;
    policy_.OnLeadCost(solve.newton.iterations);
  } else if (kind == SolveKind::kRepair) {
    avg_repair_iters_ =
        avg_repair_iters_ == 0.0
            ? solve.newton.iterations
            : (1 - kEma) * avg_repair_iters_ + kEma * solve.newton.iterations;
    ++repair_samples_;
    policy_.OnRepairCost(solve.newton.iterations);
  }
  SolveRecord record;
  record.kind = kind;
  record.time_point = solve.point ? solve.point->time : 0.0;
  record.seconds = solve.solve_seconds;
  record.newton_iterations = solve.newton.iterations;
  record.deps = std::move(deps);
  record.useful = useful;

  result_.stats.newton_iterations += static_cast<std::uint64_t>(solve.newton.iterations);
  result_.stats.lu_full_factors += static_cast<std::uint64_t>(solve.newton.lu_full_factors);
  result_.stats.lu_refactors += static_cast<std::uint64_t>(solve.newton.lu_refactors);
  result_.stats.chord_solves += static_cast<std::uint64_t>(solve.newton.chord_solves);
  result_.stats.forced_refactors += static_cast<std::uint64_t>(solve.newton.forced_refactors);
  return result_.ledger.Add(std::move(record));
}

void PipelineDriver::AcceptPoint(const engine::SolutionPointPtr& point, int ledger_id,
                                 bool leading) {
  history_.Add(point);
  ledger_id_of_point_[point.get()] = ledger_id;
  // Prune map entries for points that fell out of the bounded history.
  if (ledger_id_of_point_.size() > 4 * static_cast<std::size_t>(options_.sim.history_depth)) {
    std::map<const engine::SolutionPoint*, int> kept;
    for (int i = 0; i < history_.size(); ++i) {
      const auto* raw = history_.FromNewest(i).get();
      const auto it = ledger_id_of_point_.find(raw);
      if (it != ledger_id_of_point_.end()) kept.emplace(raw, it->second);
    }
    ledger_id_of_point_ = std::move(kept);
  }
  if (leading) {
    result_.trace.Record(point->time, point->x);
    result_.stats.steps_accepted += 1;
    result_.final_point = point;

    // Bypass step-floor safety valve (same rule as the serial engine): a
    // sustained run of leading accepts pinned at hmin with replay active
    // means the replay wobble exceeded the deck's LTE budget — shut the
    // bypass off on every context and let the step size recover.
    if (contexts_[0]->bypass.active()) {
      if (point->time - last_leading_time_ <=
          limits_.hmin * engine::DeviceBypass::kFloorWindow) {
        if (++floor_streak_ >= engine::DeviceBypass::kFloorStreakLimit) {
          for (auto& ctx : contexts_) ctx->bypass.Disable();
          result_.stats.bypass_auto_disables += 1;
        }
      } else {
        floor_streak_ = 0;
      }
    }
    last_leading_time_ = point->time;
  }
}

void PipelineDriver::MaybeQuarantine() {
  if (options_.scheme == Scheme::kSerial) return;
  if (consecutive_failures_ < options_.quarantine_threshold) return;
  if (quarantine_rounds_left_ == 0) result_.sched.quarantine_activations += 1;
  quarantine_rounds_left_ = options_.quarantine_rounds;
  consecutive_failures_ = 0;
}

void PipelineDriver::OnNewtonFailure(double attempted_h,
                                     const engine::StepSolveResult& solve,
                                     std::vector<int> deps) {
  result_.stats.steps_rejected_newton += 1;
  Record(SolveKind::kRejected, solve, std::move(deps), /*useful=*/false);
  ++consecutive_failures_;
  MaybeQuarantine();
  h_ = attempted_h / options_.sim.newton_fail_shrink;
  if (h_ >= limits_.hmin) return;

  // Step shrinking is out of road — the historical hard-throw point.  Climb
  // the rescue ladder for one minimal step on the leading context before
  // declaring the run dead, and even then return a structured abort that
  // keeps the partial trace/ledger instead of unwinding through the rounds.
  const double t_now = history_.newest_time();
  const double t_rescue = std::min(t_now + limits_.hmin, spec_.tstop);
  const engine::HistoryWindow window = history_.Window(4);
  engine::RescueOutcome rescue =
      engine::AttemptRescue(*contexts_[0], window, t_rescue, options_.sim, result_.stats);
  if (rescue.rescued) {
    const int id =
        Record(SolveKind::kLeading, rescue.solve, DepsOf(window), /*useful=*/true);
    AcceptPoint(rescue.solve.point, id, /*leading=*/true);
    // The rescued point is a BE restart: rebuild the local history from it
    // exactly as after a breakpoint, at the fresh-start step size.
    restart_ = true;
    steps_since_restart_ = 0;
    h_ = limits_.h0;
    last_growth_factor_ = 1.0;
    return;
  }
  aborted_ = true;
  abort_reason_ = "wavepipe: Newton failure with step at hmin, t = " +
                  std::to_string(t_now) +
                  (solve.failure.empty() ? "" : " (" + solve.failure + ")") +
                  "; rescue ladder exhausted: " + rescue.attempts;
}

void PipelineDriver::OnLteRejection(const engine::StepAssessment& assess,
                                    double attempted_h) {
  (void)attempted_h;
  result_.stats.steps_rejected_lte += 1;
  policy_.OnLteRejection();
  h_ = std::max(assess.h_next, limits_.hmin);
  bwp_cooldown_ = 1;
}

void PipelineDriver::OnLeadingAccepted(const engine::StepAssessment& assess,
                                       bool hit_breakpoint, double growth_cap,
                                       double h_used, bool update_step_control) {
  (void)growth_cap;
  if (bwp_cooldown_ > 0) --bwp_cooldown_;
  policy_.OnLeadingAccepted();
  consecutive_failures_ = 0;  // a clean leading accept ends the failure streak
  ++steps_since_restart_;
  restart_ = false;
  if (hit_breakpoint) {
    ++next_breakpoint_;
    restart_ = true;
    steps_since_restart_ = 0;
    h_ = limits_.h0;
    last_growth_factor_ = 1.0;
    return;
  }
  if (!update_step_control) return;
  if (h_used > 0.0) {
    last_growth_factor_ = std::clamp(assess.h_next / h_used, 0.5, 4.0);
  }
  h_ = std::clamp(assess.h_next, limits_.hmin, limits_.hmax);
}

engine::StepControlParams PipelineDriver::ParamsWithCap(int order, double cap) const {
  engine::StepControlParams params =
      engine::MakeStepParams(options_.sim, circuit_.num_nodes(), order);
  params.growth_cap = cap;
  return params;
}

int PipelineDriver::BackwardPointCount() const {
  if (restart_ || steps_since_restart_ < 1 || history_.size() < 2) return 0;
  // The trailing interval is already densified (a rejected round keeps its
  // backward points in history); piling more points into it adds cost and
  // numerical noise, never information.
  if (history_.FromNewest(1)->auxiliary) return 0;
  // After an LTE rejection the local error estimate just proved optimistic;
  // run one round at the serial cap before trusting the raised one again.
  if (bwp_cooldown_ > 0) return 0;
  int helpers = 0;
  switch (options_.scheme) {
    case Scheme::kBackward: helpers = options_.threads - 1; break;
    case Scheme::kCombined: helpers = 1; break;
    default: return 0;
  }
  return std::clamp(helpers, 0, static_cast<int>(options_.bwp_growth_caps.size()));
}

double PipelineDriver::BwpGrowthCap(int backward_points) const {
  if (backward_points <= 0) return options_.sim.step_growth;
  const std::size_t index =
      std::min(static_cast<std::size_t>(backward_points) - 1,
               options_.bwp_growth_caps.size() - 1);
  return options_.bwp_growth_caps[index];
}

WavePipeResult RunWavePipe(const engine::Circuit& circuit,
                           const engine::MnaStructure& structure,
                           const engine::TransientSpec& spec,
                           const WavePipeOptions& options) {
  PipelineDriver driver(circuit, structure, spec, options);
  return driver.Run();
}

}  // namespace wavepipe::pipeline
