#include "wavepipe/trace_export.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>

#include "util/error.hpp"

namespace wavepipe::pipeline {

void PipelineSchedStats::ExportCounters(util::telemetry::CounterRegistry& registry) const {
  registry.Count("sched.rounds", rounds);
  registry.Count("sched.backward_solves", backward_solves);
  registry.Count("sched.speculative_solves", speculative_solves);
  registry.Count("sched.speculative_accepted", speculative_accepted);
  registry.Count("sched.speculative_direct", speculative_direct);
  registry.Count("sched.speculative_discarded", speculative_discarded);
  registry.Count("sched.repair_solves", repair_solves);
  registry.Count("sched.repair_newton_iterations", repair_newton_iterations);
  registry.Count("sched.quarantine_activations", quarantine_activations);
  registry.Count("sched.quarantined_rounds", quarantined_rounds);
  registry.Count("sched.drained_task_errors", drained_task_errors);
  registry.Value("sched.speculation_acceptance", speculation_acceptance());
  // Per-scheme attribution sub-keys — additive to the schema above (the
  // original keys stay byte-stable; see kRunStatsSchema note).
  registry.Count("sched.bwp.backward_solves", bwp_backward_solves);
  registry.Count("sched.combined.backward_solves", combined_backward_solves);
  registry.Count("sched.fwp.speculative_solves", fwp_speculative_solves);
  registry.Count("sched.fwp.speculative_accepted", fwp_speculative_accepted);
  registry.Value("sched.fwp.speculation_acceptance", speculation_acceptance_fwp());
  registry.Count("sched.combined.speculative_solves", combined_speculative_solves);
  registry.Count("sched.combined.speculative_accepted", combined_speculative_accepted);
  registry.Value("sched.combined.speculation_acceptance",
                 speculation_acceptance_combined());
}

namespace {

// --- JSON formatting helpers ------------------------------------------------

void AppendEscaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendString(std::string& out, const std::string& text) {
  out += '"';
  AppendEscaped(out, text);
  out += '"';
}

/// JSON number from a double.  %.17g round-trips; JSON has no Inf/NaN, so
/// those degrade to 0 (counters never legitimately produce them).
void AppendDouble(std::string& out, double value) {
  if (!std::isfinite(value)) value = 0.0;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

void AppendCounterValue(std::string& out, const util::telemetry::Counter& counter) {
  if (counter.integral) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(counter.value));
    out += buf;
  } else {
    AppendDouble(out, counter.value);
  }
}

// --- Chrome trace_event emission --------------------------------------------

/// One complete ("X") event.  `extra` is spliced verbatim after the duration
/// field — used for args/cname.
void AppendCompleteEvent(std::string& out, int pid, std::uint32_t tid,
                         const char* cat, const std::string& name, double ts_us,
                         double dur_us, const std::string& extra) {
  out += "{\"ph\":\"X\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"cat\":\"";
  AppendEscaped(out, cat);
  out += "\",\"name\":";
  AppendString(out, name);
  out += ",\"ts\":";
  AppendDouble(out, ts_us);
  out += ",\"dur\":";
  AppendDouble(out, dur_us);
  out += extra;
  out += "}";
}

void AppendMetadataEvent(std::string& out, int pid, std::uint32_t tid,
                         const char* which, const std::string& value) {
  out += "{\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"name\":\"";
  out += which;
  out += "\",\"args\":{\"name\":";
  AppendString(out, value);
  out += "}}";
}

constexpr int kLivePid = 1;
constexpr int kReplayPid = 2;

}  // namespace

util::telemetry::CounterRegistry BuildRunCounters(const RunCounterInputs& inputs) {
  util::telemetry::CounterRegistry registry;
  inputs.stats.ExportCounters(registry);
  inputs.assembly.ExportCounters(registry);
  inputs.sched.ExportCounters(registry);
  inputs.spec.ExportCounters(registry);
  inputs.phases.ExportCounters(registry);
  registry.Count("replay.workers", static_cast<std::uint64_t>(
                                       inputs.replay.workers > 0 ? inputs.replay.workers : 0));
  registry.Value("replay.makespan_seconds", inputs.replay.makespan_seconds);
  registry.Value("replay.busy_seconds", inputs.replay.busy_seconds);
  registry.Value("replay.critical_path_seconds", inputs.replay.critical_path_seconds);
  registry.Value("replay.utilization", inputs.replay.utilization);
  const Ledger* ledger = inputs.ledger;
  registry.Count("ledger.records", ledger ? ledger->size() : 0);
  registry.Value("ledger.total_seconds", ledger ? ledger->TotalSeconds() : 0.0);
  registry.Value("ledger.useful_seconds", ledger ? ledger->UsefulSeconds() : 0.0);
  inputs.resilience.ExportCounters(registry);  // v1.2: appended after ledger.*
  inputs.reduction.ExportCounters(registry);   // v1.3: reduce.* after resilience
  inputs.batch.ExportCounters(registry);       // v1.4: batch.* appended last
  return registry;
}

std::string RunStatsJson(const RunInfo& info,
                         const util::telemetry::CounterRegistry& registry) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"schema\": ";
  AppendString(out, kRunStatsSchema);
  out += ",\n  \"engine\": ";
  AppendString(out, info.engine);
  out += ",\n  \"scheme\": ";
  AppendString(out, info.scheme);
  out += ",\n  \"deck\": ";
  AppendString(out, info.deck);
  out += ",\n  \"threads\": ";
  out += std::to_string(info.threads);
  out += ",\n  \"dcop_strategy\": ";
  AppendString(out, info.dcop_strategy);
  out += ",\n  \"assembly_strategy\": ";
  AppendString(out, info.assembly_strategy);
  out += ",\n  \"completed\": ";
  out += info.completed ? "true" : "false";
  out += ",\n  \"abort_reason\": ";
  AppendString(out, info.abort_reason);
  out += ",\n  \"last_good_time\": ";
  AppendDouble(out, info.last_good_time);
  out += ",\n  \"counters\": {";
  bool first = true;
  for (const auto& counter : registry.counters()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendString(out, counter.name);
    out += ": ";
    AppendCounterValue(out, counter);
  }
  out += "\n  }\n}\n";
  return out;
}

std::string ChromeTraceJson(const ChromeTraceInputs& inputs) {
  std::string out;
  out.reserve(1 << 16);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",\n";
    else out += "\n";
    first = false;
  };

  // ---- pid 1: live telemetry spans, one thread track per lane ----
  if (!inputs.capture.events.empty() || !inputs.capture.lanes.empty()) {
    comma();
    AppendMetadataEvent(out, kLivePid, 0, "process_name", "live telemetry");
    for (const auto& lane : inputs.capture.lanes) {
      comma();
      AppendMetadataEvent(out, kLivePid, lane.lane, "thread_name", lane.label);
    }
    for (const auto& event : inputs.capture.events) {
      comma();
      if (event.instant) {
        out += "{\"ph\":\"i\",\"s\":\"t\",\"pid\":";
        out += std::to_string(kLivePid);
        out += ",\"tid\":";
        out += std::to_string(event.lane);
        out += ",\"cat\":\"";
        AppendEscaped(out, event.category);
        out += "\",\"name\":";
        AppendString(out, event.name);
        out += ",\"ts\":";
        AppendDouble(out, event.start_us);
        out += "}";
      } else {
        AppendCompleteEvent(out, kLivePid, event.lane, event.category, event.name,
                            event.start_us, event.dur_us, "");
      }
    }
  }

  // ---- pid 2: virtual replay of the ledger on k modeled workers ----
  if (inputs.ledger && inputs.replay_workers >= 1) {
    std::vector<ReplayTask> schedule;
    ReplayOnWorkers(*inputs.ledger, inputs.replay_workers, inputs.replay_cost, &schedule);
    // Measured seconds render in real microseconds; the iteration basis is a
    // virtual unit and renders one iteration per microsecond.
    const double scale = inputs.replay_cost == ReplayCost::kMeasuredSeconds ? 1e6 : 1.0;
    comma();
    AppendMetadataEvent(out, kReplayPid, 0, "process_name",
                        "modeled replay (" + std::to_string(inputs.replay_workers) +
                            " workers)");
    for (int w = 0; w < inputs.replay_workers; ++w) {
      comma();
      AppendMetadataEvent(out, kReplayPid, static_cast<std::uint32_t>(w), "thread_name",
                          "worker-" + std::to_string(w));
    }
    const auto& records = inputs.ledger->records();
    for (const auto& task : schedule) {
      comma();
      const SolveRecord& record = records[static_cast<std::size_t>(task.record)];
      std::string extra = ",\"args\":{\"id\":" + std::to_string(record.id) +
                          ",\"time_point\":";
      AppendDouble(extra, record.time_point);
      extra += ",\"newton_iterations\":" + std::to_string(record.newton_iterations);
      extra += record.useful ? ",\"wasted\":false}" : ",\"wasted\":true}";
      // Wasted speculative work gets Chrome's "terrible" palette slot so it
      // jumps out of the timeline.
      if (!record.useful) extra += ",\"cname\":\"terrible\"";
      std::string name = SolveKindName(record.kind);
      if (!record.useful) name += " (wasted)";
      AppendCompleteEvent(out, kReplayPid, static_cast<std::uint32_t>(task.worker),
                          "replay", name, task.start * scale,
                          (task.finish - task.start) * scale, extra);
    }
  }

  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

void WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream stream(path, std::ios::binary);
  if (!stream) throw Error("cannot open '" + path + "' for writing");
  stream << contents;
  stream.flush();
  if (!stream) throw Error("failed writing '" + path + "'");
}

}  // namespace wavepipe::pipeline
