#include "wavepipe/virtual_pipeline.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace wavepipe::pipeline {

ReplayResult ReplayOnWorkers(const Ledger& ledger, int workers, ReplayCost cost) {
  WP_ASSERT(workers >= 1);
  ReplayResult out;
  out.workers = workers;

  const auto& records = ledger.records();
  std::vector<double> finish(records.size(), 0.0);
  std::vector<double> chain(records.size(), 0.0);  // critical-path finish (unbounded workers)
  std::vector<double> worker_free(static_cast<std::size_t>(workers), 0.0);

  for (std::size_t i = 0; i < records.size(); ++i) {
    const SolveRecord& r = records[i];
    const double task_cost = cost == ReplayCost::kMeasuredSeconds
                                 ? r.seconds
                                 : static_cast<double>(r.newton_iterations);
    double ready = 0.0;
    double chain_ready = 0.0;
    for (int dep : r.deps) {
      ready = std::max(ready, finish[static_cast<std::size_t>(dep)]);
      chain_ready = std::max(chain_ready, chain[static_cast<std::size_t>(dep)]);
    }
    // Earliest-available worker (greedy list scheduling in release order).
    auto it = std::min_element(worker_free.begin(), worker_free.end());
    const double start = std::max(ready, *it);
    finish[i] = start + task_cost;
    *it = finish[i];
    chain[i] = chain_ready + task_cost;
    out.busy_seconds += task_cost;
  }

  for (std::size_t i = 0; i < records.size(); ++i) {
    out.makespan_seconds = std::max(out.makespan_seconds, finish[i]);
    out.critical_path_seconds = std::max(out.critical_path_seconds, chain[i]);
  }
  if (out.makespan_seconds > 0) {
    out.utilization = out.busy_seconds / (out.makespan_seconds * workers);
  }
  return out;
}

}  // namespace wavepipe::pipeline
