#include "wavepipe/virtual_pipeline.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace wavepipe::pipeline {

namespace {
/// Same-color devices per kAssembly replay record.  Small enough that a wide
/// color spreads over several virtual workers, large enough that the replay
/// stays O(devices) with short dep lists.
constexpr std::size_t kLedgerChunkDevices = 16;
}  // namespace

ReplayResult ReplayOnWorkers(const Ledger& ledger, int workers, ReplayCost cost,
                             std::vector<ReplayTask>* schedule) {
  WP_ASSERT(workers >= 1);
  ReplayResult out;
  out.workers = workers;
  if (schedule) {
    schedule->clear();
    schedule->reserve(ledger.size());
  }

  const auto& records = ledger.records();
  std::vector<double> finish(records.size(), 0.0);
  std::vector<double> chain(records.size(), 0.0);  // critical-path finish (unbounded workers)
  std::vector<double> worker_free(static_cast<std::size_t>(workers), 0.0);

  for (std::size_t i = 0; i < records.size(); ++i) {
    const SolveRecord& r = records[i];
    const double task_cost = cost == ReplayCost::kMeasuredSeconds
                                 ? r.seconds
                                 : static_cast<double>(r.newton_iterations);
    double ready = 0.0;
    double chain_ready = 0.0;
    for (int dep : r.deps) {
      ready = std::max(ready, finish[static_cast<std::size_t>(dep)]);
      chain_ready = std::max(chain_ready, chain[static_cast<std::size_t>(dep)]);
    }
    // Earliest-available worker (greedy list scheduling in release order).
    auto it = std::min_element(worker_free.begin(), worker_free.end());
    const double start = std::max(ready, *it);
    finish[i] = start + task_cost;
    *it = finish[i];
    chain[i] = chain_ready + task_cost;
    out.busy_seconds += task_cost;
    if (schedule) {
      schedule->push_back(ReplayTask{
          static_cast<int>(i),
          static_cast<int>(std::distance(worker_free.begin(), it)), start, finish[i]});
    }
  }

  for (std::size_t i = 0; i < records.size(); ++i) {
    out.makespan_seconds = std::max(out.makespan_seconds, finish[i]);
    out.critical_path_seconds = std::max(out.critical_path_seconds, chain[i]);
  }
  if (out.makespan_seconds > 0) {
    out.utilization = out.busy_seconds / (out.makespan_seconds * workers);
  }
  return out;
}

AppendedTasks AppendAssemblyTasks(Ledger& ledger, const parallel::ColorSchedule& schedule,
                                  double seconds_per_device, std::vector<int> deps) {
  AppendedTasks out;
  std::vector<int> prev_color = std::move(deps);
  std::vector<int> this_color;
  for (int color = 0; color < schedule.num_colors(); ++color) {
    const std::span<const int> group = schedule.ColorDevices(color);
    this_color.clear();
    for (std::size_t begin = 0; begin < group.size(); begin += kLedgerChunkDevices) {
      const std::size_t count = std::min(kLedgerChunkDevices, group.size() - begin);
      SolveRecord record;
      record.kind = SolveKind::kAssembly;
      record.seconds = static_cast<double>(count) * seconds_per_device;
      record.newton_iterations = static_cast<int>(count);  // unit-cost basis
      record.deps = prev_color;  // barrier: every chunk of the previous color
      const int id = ledger.Add(std::move(record));
      if (out.first_id < 0) out.first_id = id;
      ++out.count;
      this_color.push_back(id);
    }
    if (!this_color.empty()) std::swap(prev_color, this_color);
  }
  out.tail = std::move(prev_color);
  return out;
}

AppendedTasks AppendFactorTasks(Ledger& ledger, const sparse::SparseLu& lu,
                                double seconds_per_flop, std::vector<int> deps) {
  WP_ASSERT(lu.factored());
  AppendedTasks out;
  const int n = lu.dimension();
  const std::span<const double> flops = lu.column_flops();
  std::vector<int> id_of(static_cast<std::size_t>(n), -1);
  std::vector<char> has_dependent(static_cast<std::size_t>(n), 0);
  for (int j = 0; j < n; ++j) {
    SolveRecord record;
    record.kind = SolveKind::kFactorColumn;
    record.seconds = flops[static_cast<std::size_t>(j)] * seconds_per_flop;
    record.newton_iterations = 1;
    const std::span<const int> col_deps = lu.FactorColumnDeps(j);
    if (col_deps.empty()) {
      record.deps = deps;  // DAG sources wait for the incoming tasks
    } else {
      record.deps.reserve(col_deps.size());
      for (int r : col_deps) {
        record.deps.push_back(id_of[static_cast<std::size_t>(r)]);
        has_dependent[static_cast<std::size_t>(r)] = 1;
      }
    }
    const int id = ledger.Add(std::move(record));
    id_of[static_cast<std::size_t>(j)] = id;
    if (out.first_id < 0) out.first_id = id;
    ++out.count;
  }
  for (int j = 0; j < n; ++j) {
    if (!has_dependent[static_cast<std::size_t>(j)]) {
      out.tail.push_back(id_of[static_cast<std::size_t>(j)]);
    }
  }
  return out;
}

}  // namespace wavepipe::pipeline
