#include "wavepipe/ledger.hpp"

#include "util/error.hpp"

namespace wavepipe::pipeline {

const char* SolveKindName(SolveKind kind) {
  switch (kind) {
    case SolveKind::kDcop: return "dcop";
    case SolveKind::kLeading: return "leading";
    case SolveKind::kBackward: return "backward";
    case SolveKind::kSpeculative: return "speculative";
    case SolveKind::kRepair: return "repair";
    case SolveKind::kRejected: return "rejected";
    case SolveKind::kAssembly: return "assembly";
    case SolveKind::kFactorColumn: return "factor_column";
  }
  return "?";
}

int Ledger::Add(SolveRecord record) {
  record.id = static_cast<int>(records_.size());
  for (int dep : record.deps) {
    WP_ASSERT(dep >= 0 && dep < record.id);  // the task graph is a DAG by construction
  }
  records_.push_back(std::move(record));
  return records_.back().id;
}

double Ledger::TotalSeconds() const {
  double total = 0.0;
  for (const auto& r : records_) total += r.seconds;
  return total;
}

double Ledger::UsefulSeconds() const {
  double total = 0.0;
  for (const auto& r : records_) {
    if (r.useful) total += r.seconds;
  }
  return total;
}

std::size_t Ledger::CountKind(SolveKind kind) const {
  std::size_t count = 0;
  for (const auto& r : records_) {
    if (r.kind == kind) ++count;
  }
  return count;
}

std::uint64_t Ledger::TotalNewtonIterations() const {
  std::uint64_t total = 0;
  for (const auto& r : records_) total += static_cast<std::uint64_t>(r.newton_iterations);
  return total;
}

}  // namespace wavepipe::pipeline
