// Virtual-time replay: list-schedules a Ledger's task DAG onto k workers and
// reports the makespan.  See ledger.hpp for why this stands in for multi-core
// wall clock on this single-core container.
//
// Besides whole-solve records, a ledger can carry INTRA-solve tasks —
// assembly color phases and refactorization columns — appended via
// AppendAssemblyTasks()/AppendFactorTasks().  Replaying such a ledger models
// the fine-grained execution (colored assembly feeding a level-scheduled
// refactorization) on k workers, which is how bench_factor projects
// multi-thread factorization throughput from a 1-vCPU container.
#pragma once

#include <vector>

#include "parallel/coloring.hpp"
#include "sparse/lu.hpp"
#include "wavepipe/ledger.hpp"

namespace wavepipe::pipeline {

struct ReplayResult {
  int workers = 1;
  double makespan_seconds = 0.0;       ///< modeled parallel runtime
  double busy_seconds = 0.0;           ///< sum of task costs (all workers)
  double critical_path_seconds = 0.0;  ///< longest dependency chain (k = inf bound)
  double utilization = 0.0;            ///< busy / (makespan * workers)
};

/// How task cost is measured during replay.
enum class ReplayCost {
  kMeasuredSeconds,   ///< thread-CPU seconds (reflects this machine)
  kNewtonIterations,  ///< deterministic: 1 unit per Newton iteration.  Noise-
                      ///< free across runs; the right basis for speedup
                      ///< tables when individual solves are microseconds.
};

/// One task placement from a replay: which virtual worker ran ledger record
/// `record` and when.  Times are in the replay's cost unit (seconds or
/// Newton iterations).  This is what the Chrome trace exporter renders as
/// the modeled multi-core timeline, one lane per worker.
struct ReplayTask {
  int record = -1;     ///< index into ledger.records()
  int worker = 0;
  double start = 0.0;
  double finish = 0.0;
};

/// Greedy list scheduling in ledger order (which is the order the real
/// scheduler released the tasks): each task starts at
/// max(earliest worker free time, all deps' finish times).
///
/// When `schedule` is non-null it receives one ReplayTask per ledger record,
/// in ledger order — the full placement behind the returned makespan.
ReplayResult ReplayOnWorkers(const Ledger& ledger, int workers,
                             ReplayCost cost = ReplayCost::kMeasuredSeconds,
                             std::vector<ReplayTask>* schedule = nullptr);

/// Ids of a batch of records appended to a ledger, for chaining further
/// task batches behind it.
struct AppendedTasks {
  int first_id = -1;
  int count = 0;
  /// Appended ids that no other appended record depends on — the batch's
  /// sinks; downstream tasks list these as deps.
  std::vector<int> tail;
};

/// Appends kAssembly records for one conflict-free assembly pass: one record
/// PER DEVICE CHUNK (chunks of kLedgerChunkDevices same-color devices), so
/// the replay can spread a color across workers.  Chunks of one color depend
/// on all chunks of the previous color (colors are barriers); first-color
/// chunks depend on `deps`.  Each record costs (devices in chunk) *
/// seconds_per_device.
AppendedTasks AppendAssemblyTasks(Ledger& ledger, const parallel::ColorSchedule& schedule,
                                  double seconds_per_device, std::vector<int> deps = {});

/// Appends one kFactorColumn record per column of a level-scheduled numeric
/// refactorization of `lu` (which must be factored).  Column j costs
/// column_flops()[j] * seconds_per_flop and depends on exactly its
/// FactorColumnDeps() — the replay therefore explores the true column DAG,
/// not the barrier-per-level relaxation.  Columns with no dependency inside
/// the batch additionally depend on `deps` (e.g. the tail of the assembly
/// pass that produced the matrix).
AppendedTasks AppendFactorTasks(Ledger& ledger, const sparse::SparseLu& lu,
                                double seconds_per_flop, std::vector<int> deps = {});

}  // namespace wavepipe::pipeline
