// Virtual-time replay: list-schedules a Ledger's task DAG onto k workers and
// reports the makespan.  See ledger.hpp for why this stands in for multi-core
// wall clock on this single-core container.
#pragma once

#include "wavepipe/ledger.hpp"

namespace wavepipe::pipeline {

struct ReplayResult {
  int workers = 1;
  double makespan_seconds = 0.0;       ///< modeled parallel runtime
  double busy_seconds = 0.0;           ///< sum of task costs (all workers)
  double critical_path_seconds = 0.0;  ///< longest dependency chain (k = inf bound)
  double utilization = 0.0;            ///< busy / (makespan * workers)
};

/// How task cost is measured during replay.
enum class ReplayCost {
  kMeasuredSeconds,   ///< thread-CPU seconds (reflects this machine)
  kNewtonIterations,  ///< deterministic: 1 unit per Newton iteration.  Noise-
                      ///< free across runs; the right basis for speedup
                      ///< tables when individual solves are microseconds.
};

/// Greedy list scheduling in ledger order (which is the order the real
/// scheduler released the tasks): each task starts at
/// max(earliest worker free time, all deps' finish times).
ReplayResult ReplayOnWorkers(const Ledger& ledger, int workers,
                             ReplayCost cost = ReplayCost::kMeasuredSeconds);

}  // namespace wavepipe::pipeline
