// Observability exporters: the two machine-readable views of a run.
//
//  * run_stats.json — a stable, schema-versioned counter dump.  One
//    BuildRunCounters() builds the registry for EVERY engine (serial,
//    fine-grained, WavePipe); groups an engine lacks are exported with
//    default values rather than omitted, so the key set is structurally
//    identical across engines and a CI diff of two runs is always
//    key-aligned.  tools/check_bench.py and the bench JSON artifacts consume
//    this schema.
//
//  * Chrome trace_event JSON — a timeline for chrome://tracing / Perfetto
//    with two process groups: pid 1 carries the LIVE telemetry spans
//    captured during the run (one thread track per telemetry lane: driver
//    loop, pipeline slots), pid 2 carries the VIRTUAL replay of the work
//    ledger on k modeled workers (one track per worker; speculative solves
//    that never reached the waveform are color-flagged as wasted).  The
//    replay half is the paper's multi-core claim made visible: the same
//    list-scheduled placement ReplayOnWorkers() reports as a makespan,
//    rendered task by task.
#pragma once

#include <string>
#include <vector>

#include "engine/newton.hpp"
#include "engine/transient.hpp"
#include "parallel/fine_grained.hpp"
#include "batch/stats.hpp"
#include "reduce/reduce.hpp"
#include "util/telemetry.hpp"
#include "wavepipe/ledger.hpp"
#include "wavepipe/virtual_pipeline.hpp"
#include "wavepipe/wavepipe.hpp"

namespace wavepipe::pipeline {

/// run_stats.json schema tag.  Bump ONLY with a matching update to
/// tools/check_bench.py and the schema-parity tests.
///
/// The schema grows ADDITIVELY.  The original v1 key set is byte-stable; the
/// per-scheme `sched.{bwp,fwp,combined}.*` sub-keys and the
/// speculation-policy `spec.*` group were appended under the v1 tag
/// (consumers iterate their own baseline keys, so additions never break
/// them — see tools/check_bench.py).
///
/// v1.1 appends the domain-decomposition group `partition.*` (pieces,
/// interface_size, piece_imbalance, full_factors, refactors, solves,
/// schur_factors, schur_nnz, schur_seconds) after the `lu.*` block.  Every
/// pre-existing key keeps its name, type and position; v1 consumers reading
/// their own baseline keys parse v1.1 documents unchanged.
///
/// v1.2 appends the durable-run groups `ckpt.*`, `watchdog.*` and
/// `resilience.*` (engine/resilience_stats.hpp: checkpoint writes/failures/
/// bytes/generation/resumed, watchdog stalls/escalations, breaker trips/
/// retrips/reprobes, per-feature trip counts, budget_exhausted) after the
/// `ledger.*` block.  Additive-only again: v1.1 consumers parse v1.2
/// documents unchanged.
///
/// v1.3 appends the linear-subnetwork-reduction group `reduce.*`
/// (reduce/reduce.hpp: subnets, nodes_eliminated, devices_absorbed,
/// static_subnets, max_interior, max_ports, interior_expansions) after the
/// resilience block.  All zeros when --reduce is off or nothing was
/// reducible; additive-only, so v1.2 consumers parse v1.3 unchanged.
///
/// v1.4 appends the batch-analysis group `batch.*` (batch/stats.hpp:
/// variants_total/ok/failed, step_axes, mc_samples, ordering_hits/misses,
/// artifacts_shared, artifacts_build_seconds, steps_accepted,
/// newton_iterations, dc_points, ac_points, wall_seconds) after the
/// `reduce.*` block.  All zeros outside --sweep runs; additive-only, so
/// v1.3 consumers parse v1.4 unchanged.
inline constexpr const char* kRunStatsSchema = "wavepipe.run_stats.v1.4";

/// Identity of one run for the run_stats.json header.  Strings live here;
/// the counter registry is numeric-only by design.
struct RunInfo {
  std::string engine;        ///< "serial" | "fine-grained" | "wavepipe"
  std::string scheme = "-";  ///< pipeline scheme name, "-" off-pipeline
  std::string deck;          ///< deck title (or path when untitled)
  int threads = 1;
  std::string dcop_strategy;
  std::string assembly_strategy = "serial";
  bool completed = true;
  std::string abort_reason;
  double last_good_time = 0.0;
};

/// Everything BuildRunCounters() folds into the registry.  Every member has
/// a default: an engine without a scheduler (serial), phase breakdown
/// (WavePipe) or ledger (fine-grained) exports the group's defaults, which
/// is what keeps the schema identical across engines.
struct RunCounterInputs {
  engine::TransientStats stats;
  engine::AssemblyStats assembly;
  PipelineSchedStats sched;
  SpecPolicyStats spec;
  parallel::PhaseBreakdown phases;
  ReplayResult replay;
  const Ledger* ledger = nullptr;
  /// Durable-run counters (v1.2): ckpt.*, watchdog.*, resilience.*.
  engine::ResilienceStats resilience;
  /// Linear-subnetwork reduction counters (v1.3): reduce.*.
  reduce::ReductionStats reduction;
  /// Batch-analysis counters (v1.4): batch.*.
  batch::BatchStats batch;
};

/// Builds the full run_stats counter registry: transient.* + lu.* (engine
/// core), assembly.*, sched.*, spec.*, phases.*, replay.*, ledger.*.  Group
/// order and names are the schema; the parity test pins them.
util::telemetry::CounterRegistry BuildRunCounters(const RunCounterInputs& inputs);

/// Serializes header + counters to the run_stats.json document (integral
/// counters as JSON integers, values as doubles, insertion order preserved).
std::string RunStatsJson(const RunInfo& info,
                         const util::telemetry::CounterRegistry& registry);

/// Inputs for the Chrome trace exporter.  Both halves are optional: an empty
/// capture emits no live spans, a null ledger no replay lanes.
struct ChromeTraceInputs {
  util::telemetry::Capture capture;
  const Ledger* ledger = nullptr;
  /// Virtual workers for the replay half (>= 1 to emit it).
  int replay_workers = 0;
  /// Replay cost basis.  kMeasuredSeconds renders in real microseconds;
  /// kNewtonIterations renders one iteration as one microsecond (the unit is
  /// virtual anyway — Perfetto only needs monotone numbers).
  ReplayCost replay_cost = ReplayCost::kMeasuredSeconds;
};

/// Serializes a `{"traceEvents": [...]}` document chrome://tracing and
/// Perfetto load directly.
std::string ChromeTraceJson(const ChromeTraceInputs& inputs);

/// Convenience: writes `contents` to `path`, throwing util::Error on I/O
/// failure (the CLI's --trace-json/--stats-json both route through this).
void WriteTextFile(const std::string& path, const std::string& contents);

}  // namespace wavepipe::pipeline
