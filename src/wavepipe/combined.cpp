// Combined scheme: one backward helper (raises the leading growth cap) plus
// forward speculation with the remaining threads — the paper's "both
// embodiments at once" configuration for 3+ cores.
#include "wavepipe/driver.hpp"

#include <algorithm>

namespace wavepipe::pipeline {

void PipelineDriver::RunRoundCombined() {
  int nb = BackwardPointCount();  // 1 when eligible
  if (restart_ || steps_since_restart_ < 1 || history_.size() < 2) {
    RunRoundSerial();
    return;
  }
  // Adaptive helper assignment: when speculation has demonstrably not been
  // paying (low acceptance over a meaningful sample), the forward helper is
  // worth more as a second backward point — backward solves are never
  // speculative and always inform the step controller.  This keeps the
  // combined scheme >= max(bwp, fwp) instead of diluting the backward gains
  // with unproductive speculation.
  if (nb > 0 && options_.threads >= 3 && result_.sched.speculative_solves > 64 &&
      result_.sched.speculation_acceptance() < 0.10) {
    nb = std::min({2, options_.threads - 1,
                   static_cast<int>(options_.bwp_growth_caps.size())});
  }
  // Adaptive mode replaces the heuristic above with the policy's EWMA-based
  // helper conversion (fixed mode returns nb unchanged).  nb == 0 means the
  // trailing interval is ineligible this round — the policy never overrides
  // that.
  if (nb > 0) {
    nb = policy_.ChooseBackwardCount(
        nb, std::min(options_.threads - 1,
                     static_cast<int>(options_.bwp_growth_caps.size())));
  }

  const double t_now = history_.newest_time();
  h_ = std::clamp(h_, limits_.hmin, limits_.hmax);
  const Clip clip = ClipStep(t_now, h_);
  if (clip.hit_breakpoint || clip.hit_stop) {
    // Corners ahead: no speculation, but backward pipelining still applies.
    RunRoundBackward();
    return;
  }
  const double h = clip.t_new - t_now;
  const double cap = BwpGrowthCap(nb);

  // ---- launch: leading + backward helper + speculative chain ----------------
  const engine::HistoryWindow lead_window = history_.Window(4);
  std::vector<int> lead_deps = DepsOf(lead_window);
  auto lead_future = SubmitSolve(0, lead_window, clip.t_new, /*restart=*/false);
  std::vector<HelperTask> backward = LaunchBackwardTasks(nb, /*first_slot=*/1);
  const int depth = policy_.ChooseChainDepth(std::max(0, options_.threads - 1 - nb));
  std::vector<HelperTask> chain = LaunchSpeculativeChain(
      depth, /*first_slot=*/1 + nb, clip.t_new, h, lead_window);

  // ---- join -------------------------------------------------------------------
  // Drain EVERY in-flight future (lead, chain, backward) before acting on
  // any outcome — see fwp.cpp for the exception-safety rationale.
  engine::StepSolveResult lead = JoinSolve(lead_future);
  std::vector<engine::StepSolveResult> spec_results;
  spec_results.reserve(chain.size());
  for (auto& task : chain) spec_results.push_back(JoinSolve(task.future));

  JoinAndPublishBackward(backward);

  if (!lead.converged) {
    DiscardSpeculativeChain(chain, spec_results, 0);
    policy_.OnChainValidated(static_cast<int>(chain.size()), 0);
    OnNewtonFailure(h, lead, std::move(lead_deps));
    return;
  }

  // Dense re-assessment with the raised cap, as in RunRoundBackward().
  engine::HistoryWindow dense;
  for (const auto& point : history_.Window(4)) {
    if (point->time < clip.t_new) dense.push_back(point);
  }
  std::vector<double> dense_prediction(lead.point->x.size());
  engine::PredictSolution(dense, lead.plan.order + 1, clip.t_new, dense_prediction);

  const engine::StepControlParams params = ParamsWithCap(lead.plan.order, cap);
  const engine::StepAssessment assess = engine::AssessStep(
      lead.point->x, dense_prediction, h, /*lte_active=*/true, params);

  if (!assess.accept && h > limits_.hmin * (1.0 + 1e-6)) {
    DiscardSpeculativeChain(chain, spec_results, 0);
    policy_.OnChainValidated(static_cast<int>(chain.size()), 0);
    Record(SolveKind::kRejected, lead, std::move(lead_deps), /*useful=*/false);
    OnLteRejection(assess, h);
    return;
  }

  const int id = Record(SolveKind::kLeading, lead, std::move(lead_deps), /*useful=*/true);
  AcceptPoint(lead.point, id, /*leading=*/true);
  OnLeadingAccepted(assess, /*hit_breakpoint=*/false, cap, h);

  ValidateSpeculativeChain(chain, spec_results);
}

}  // namespace wavepipe::pipeline
