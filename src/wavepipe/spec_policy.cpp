#include "wavepipe/spec_policy.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/error.hpp"

namespace wavepipe::pipeline {
namespace {

/// First-sample-seeds EWMA: a zero accumulator means "no samples yet"
/// (Newton iteration counts are always >= 1, so zero is a safe sentinel).
double BlendCost(double accumulator, double sample, double alpha) {
  if (accumulator == 0.0) return sample;
  return (1.0 - alpha) * accumulator + alpha * sample;
}

}  // namespace

const char* SpecPolicyModeName(SpecPolicyMode mode) {
  switch (mode) {
    case SpecPolicyMode::kFixed:
      return "fixed";
    case SpecPolicyMode::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

const char* SpecPredictorName(SpecPredictor predictor) {
  switch (predictor) {
    case SpecPredictor::kPolynomial:
      return "poly";
    case SpecPredictor::kHighOrder:
      return "highorder";
    case SpecPredictor::kEvent:
      return "event";
  }
  return "unknown";
}

void SpecPolicyStats::ExportCounters(util::telemetry::CounterRegistry& registry) const {
  registry.Count("spec.depth_decisions", depth_decisions);
  registry.Count("spec.depth_chosen", depth_chosen);
  registry.Count("spec.depth_raises", depth_raises);
  registry.Count("spec.depth_cuts", depth_cuts);
  registry.Count("spec.event_snaps", event_snaps);
  for (int i = 0; i < kNumSpecPredictors; ++i) {
    const std::string prefix =
        std::string("spec.") + SpecPredictorName(static_cast<SpecPredictor>(i));
    registry.Count(prefix + ".predictor_hits", predictor_hits[static_cast<std::size_t>(i)]);
    registry.Count(prefix + ".predictor_misses",
                   predictor_misses[static_cast<std::size_t>(i)]);
  }
}

void SpeculationPolicy::SaveState(std::vector<std::uint64_t>& u64,
                                  std::vector<double>& f64) const {
  u64.push_back(stats_.depth_decisions);
  u64.push_back(stats_.depth_chosen);
  u64.push_back(stats_.depth_raises);
  u64.push_back(stats_.depth_cuts);
  u64.push_back(stats_.event_snaps);
  for (int i = 0; i < kNumSpecPredictors; ++i) {
    u64.push_back(stats_.predictor_hits[static_cast<std::size_t>(i)]);
    u64.push_back(stats_.predictor_misses[static_cast<std::size_t>(i)]);
  }
  // current_depth_ may be -1 (pre-warm-start); round-trip through int64.
  u64.push_back(static_cast<std::uint64_t>(static_cast<std::int64_t>(current_depth_)));
  u64.push_back(acceptance_seeded_ ? 1 : 0);
  for (int i = 0; i < kNumSpecPredictors; ++i) {
    u64.push_back(hit_rate_seeded_[static_cast<std::size_t>(i)] ? 1 : 0);
  }
  u64.push_back(chain_launches_);
  u64.push_back(total_entries_);

  f64.push_back(acceptance_ewma_);
  f64.push_back(lead_iters_ewma_);
  f64.push_back(repair_iters_ewma_);
  f64.push_back(discard_iters_ewma_);
  f64.push_back(lte_reject_ewma_);
  for (int i = 0; i < kNumSpecPredictors; ++i) {
    f64.push_back(hit_rate_ewma_[static_cast<std::size_t>(i)]);
  }
}

void SpeculationPolicy::RestoreState(std::span<const std::uint64_t> u64,
                                     std::span<const double> f64) {
  WP_ASSERT(u64.size() >= kStateU64 && f64.size() >= kStateF64);
  std::size_t u = 0;
  stats_.depth_decisions = u64[u++];
  stats_.depth_chosen = u64[u++];
  stats_.depth_raises = u64[u++];
  stats_.depth_cuts = u64[u++];
  stats_.event_snaps = u64[u++];
  for (int i = 0; i < kNumSpecPredictors; ++i) {
    stats_.predictor_hits[static_cast<std::size_t>(i)] = u64[u++];
    stats_.predictor_misses[static_cast<std::size_t>(i)] = u64[u++];
  }
  current_depth_ = static_cast<int>(static_cast<std::int64_t>(u64[u++]));
  acceptance_seeded_ = u64[u++] != 0;
  for (int i = 0; i < kNumSpecPredictors; ++i) {
    hit_rate_seeded_[static_cast<std::size_t>(i)] = u64[u++] != 0;
  }
  chain_launches_ = u64[u++];
  total_entries_ = u64[u++];

  std::size_t f = 0;
  acceptance_ewma_ = f64[f++];
  lead_iters_ewma_ = f64[f++];
  repair_iters_ewma_ = f64[f++];
  discard_iters_ewma_ = f64[f++];
  lte_reject_ewma_ = f64[f++];
  for (int i = 0; i < kNumSpecPredictors; ++i) {
    hit_rate_ewma_[static_cast<std::size_t>(i)] = f64[f++];
  }
}

SpeculationPolicy::SpeculationPolicy(const SpecPolicyOptions& options,
                                     double fixed_backward_fraction)
    : options_(options), fixed_backward_fraction_(fixed_backward_fraction) {
  options_.min_depth = std::max(0, options_.min_depth);
  options_.max_depth = std::max(std::max(1, options_.min_depth), options_.max_depth);
}

int SpeculationPolicy::ChooseChainDepth(int fixed_depth) {
  if (!adaptive()) {
    ++stats_.depth_decisions;
    stats_.depth_chosen += static_cast<std::uint64_t>(std::max(0, fixed_depth));
    return fixed_depth;
  }
  if (current_depth_ < 0) {
    // Warm start from the historical scheme depth so the first rounds match
    // the fixed scheduler's budget until evidence accumulates.
    current_depth_ = std::clamp(std::max(1, fixed_depth),
                                std::max(1, options_.min_depth), options_.max_depth);
  }
  int depth = current_depth_;
  if (depth == 0 && options_.probe_period > 0 &&
      stats_.depth_decisions % static_cast<std::uint64_t>(options_.probe_period) == 0) {
    // Speculation is throttled off; keep a deterministic probe cadence so
    // the acceptance estimate can observe the waveform turning predictable.
    depth = 1;
  }
  ++stats_.depth_decisions;
  stats_.depth_chosen += static_cast<std::uint64_t>(depth);
  return depth;
}

int SpeculationPolicy::ChooseBackwardCount(int fixed_count, int max_count) const {
  if (!adaptive()) return fixed_count;
  int count = 1;
  if (acceptance_seeded_ &&
      total_entries_ >= static_cast<std::uint64_t>(options_.bwp_convert_warmup) &&
      acceptance_ewma_ < options_.bwp_convert_threshold) {
    // Speculation is not paying: convert a forward slot into a second
    // backward point and let the raised growth cap carry the round instead.
    count = 2;
    if (total_entries_ >= 2 * static_cast<std::uint64_t>(options_.bwp_convert_warmup) &&
        acceptance_ewma_ < 0.5 * options_.bwp_convert_threshold) {
      // Still not paying after twice the warmup: free a third slot too.
      count = 3;
    }
  }
  return std::clamp(count, 1, std::max(1, max_count));
}

double SpeculationPolicy::ChooseBackwardFraction() const {
  if (!adaptive()) return fixed_backward_fraction_;
  // Frequent leading-edge LTE rejections mean the divided-difference
  // derivative estimate goes stale over the extrapolation range: pull the
  // backward point toward the leading edge to densify the estimator basis
  // where the raised growth cap leans on it.
  const double pull = std::clamp(2.0 * lte_reject_ewma_, 0.0, 1.0);
  const double fraction =
      fixed_backward_fraction_ +
      pull * (options_.backward_fraction_max - fixed_backward_fraction_);
  return std::clamp(fraction, options_.backward_fraction_min,
                    options_.backward_fraction_max);
}

SpecPredictor SpeculationPolicy::ChoosePredictor() {
  if (!adaptive()) return SpecPredictor::kPolynomial;
  const std::uint64_t launch = chain_launches_++;
  if (options_.explore_period > 0 &&
      launch % static_cast<std::uint64_t>(options_.explore_period) == 0) {
    // Deterministic exploration slot: round-robin so a benched candidate can
    // refresh its score and win back.
    return static_cast<SpecPredictor>(
        (launch / static_cast<std::uint64_t>(options_.explore_period)) %
        kNumSpecPredictors);
  }
  int best = 0;
  double best_score = -1.0;
  for (int i = 0; i < kNumSpecPredictors; ++i) {
    const auto index = static_cast<std::size_t>(i);
    // Unscored candidates rank neutral so early rounds stay on the
    // conservative polynomial default (ties break toward lower index).
    const double score = hit_rate_seeded_[index] ? hit_rate_ewma_[index] : 0.5;
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return static_cast<SpecPredictor>(best);
}

int SpeculationPolicy::PredictorPoints(SpecPredictor predictor, int order) const {
  // kHighOrder widens the divided-difference stencil by one point; the event
  // candidate changes placement, not the extrapolation basis.
  return predictor == SpecPredictor::kHighOrder ? order + 2 : order + 1;
}

SpecEventSnap SpeculationPolicy::PredictEvent(const engine::HistoryWindow& window,
                                              int norm_unknowns,
                                              std::span<const double> breakpoints,
                                              std::size_t next_bp, double t_prev,
                                              double t_cand, double hmin) {
  SpecEventSnap snap;
  snap.time = t_cand;
  const double lo = t_prev + hmin;
  if (t_cand <= lo) return snap;

  // Source breakpoints: the earliest corner strictly inside the step.
  for (std::size_t i = next_bp; i < breakpoints.size(); ++i) {
    const double corner = breakpoints[i];
    if (corner <= t_prev + 0.5 * hmin) continue;
    if (corner > t_cand + 0.5 * hmin) break;
    snap.time = std::clamp(corner, lo, t_cand);
    snap.snapped = true;
    snap.breakpoint = true;
    break;
  }

  // Waveform zero crossings: linear trend through the two newest history
  // points, per tracked component; the earliest predicted crossing inside
  // the step wins over a later corner.
  if (window.size() >= 2) {
    const engine::SolutionPoint& p1 = *window.back();
    const engine::SolutionPoint& p0 = *window[window.size() - 2];
    const double dt = p1.time - p0.time;
    if (dt > 0.0) {
      std::size_t tracked = p1.x.size();
      if (norm_unknowns >= 0) {
        tracked = std::min(tracked, static_cast<std::size_t>(norm_unknowns));
      }
      tracked = std::min(tracked, p0.x.size());
      for (std::size_t i = 0; i < tracked; ++i) {
        const double x1 = p1.x[i];
        if (std::abs(x1) < options_.zero_cross_floor) continue;
        const double slope = (x1 - p0.x[i]) / dt;
        if (slope == 0.0 || x1 * slope > 0.0) continue;  // moving away from zero
        const double t_cross = p1.time - x1 / slope;
        if (t_cross < lo || t_cross > t_cand - 0.5 * hmin) continue;
        if (!snap.snapped || t_cross < snap.time) {
          snap.time = t_cross;
          snap.snapped = true;
          snap.breakpoint = false;
        }
      }
    }
  }

  if (snap.snapped) ++stats_.event_snaps;
  return snap;
}

void SpeculationPolicy::OnEntryOutcome(SpecPredictor predictor, bool accepted,
                                       int newton_iters, bool scored) {
  ++total_entries_;
  if (!accepted && newton_iters > 0) {
    discard_iters_ewma_ = BlendCost(discard_iters_ewma_, newton_iters, options_.ema);
  }
  if (!scored) return;
  const auto index = static_cast<std::size_t>(predictor);
  const double sample = accepted ? 1.0 : 0.0;
  if (hit_rate_seeded_[index]) {
    hit_rate_ewma_[index] =
        (1.0 - options_.ema) * hit_rate_ewma_[index] + options_.ema * sample;
  } else {
    hit_rate_ewma_[index] = sample;
    hit_rate_seeded_[index] = true;
  }
  auto& bucket = accepted ? stats_.predictor_hits : stats_.predictor_misses;
  ++bucket[index];
}

void SpeculationPolicy::OnLeadCost(int newton_iters) {
  if (newton_iters > 0) {
    lead_iters_ewma_ = BlendCost(lead_iters_ewma_, newton_iters, options_.ema);
  }
}

void SpeculationPolicy::OnRepairCost(int newton_iters) {
  if (newton_iters > 0) {
    repair_iters_ewma_ = BlendCost(repair_iters_ewma_, newton_iters, options_.ema);
  }
}

void SpeculationPolicy::OnChainValidated(int launched, int accepted) {
  if (launched <= 0) return;
  const double fraction =
      static_cast<double>(std::clamp(accepted, 0, launched)) / launched;
  if (acceptance_seeded_) {
    acceptance_ewma_ =
        (1.0 - options_.ema) * acceptance_ewma_ + options_.ema * fraction;
  } else {
    acceptance_ewma_ = fraction;
    acceptance_seeded_ = true;
  }
  if (!adaptive() || current_depth_ < 0) return;
  const int target = TargetDepth();
  if (target > current_depth_) {
    ++current_depth_;
    ++stats_.depth_raises;
  } else if (target < current_depth_) {
    --current_depth_;
    ++stats_.depth_cuts;
  }
}

void SpeculationPolicy::OnLteRejection() {
  lte_reject_ewma_ = (1.0 - options_.ema) * lte_reject_ewma_ + options_.ema;
}

void SpeculationPolicy::OnLeadingAccepted() {
  lte_reject_ewma_ *= 1.0 - options_.ema;
}

int SpeculationPolicy::TargetDepth() const {
  if (!acceptance_seeded_) return current_depth_;
  const double a = std::clamp(acceptance_ewma_, 0.0, 1.0);
  if (a >= 0.995) return options_.max_depth;
  // Entry k pays off when a^k * save >= (1 - a^k) * waste, i.e. a^k >= kappa
  // with kappa = waste / (save + waste).  Save = leading solve avoided (less
  // half the typical repair bill, since some accepts arrive via repair);
  // waste = discarded-solve cost scaled by the aversion weight.
  const double save = std::max(0.5, lead_iters_ewma_ - 0.5 * repair_iters_ewma_);
  const double waste = std::max(0.5, options_.waste_weight * discard_iters_ewma_);
  const double kappa = waste / (save + waste);
  if (a <= kappa) return options_.min_depth;
  const int k = static_cast<int>(std::log(kappa) / std::log(a));
  return std::clamp(k, options_.min_depth, options_.max_depth);
}

}  // namespace wavepipe::pipeline
