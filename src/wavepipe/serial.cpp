// Serial scheme: the conventional SPICE loop expressed as one-task rounds.
// Exists so the baseline produces the same ledger/bookkeeping as the
// pipelined schemes (the speedup experiments replay both).
#include "wavepipe/driver.hpp"

#include <algorithm>

namespace wavepipe::pipeline {

void PipelineDriver::RunRoundSerial() {
  const double t_now = history_.newest_time();
  h_ = std::clamp(h_, limits_.hmin, limits_.hmax);
  const Clip clip = ClipStep(t_now, h_);
  const double h = clip.t_new - t_now;

  const engine::HistoryWindow window = history_.Window(4);
  std::vector<int> deps = DepsOf(window);
  auto solve_future = SubmitSolve(0, window, clip.t_new, restart_);
  const engine::StepSolveResult solve = JoinSolve(solve_future);

  if (!solve.converged) {
    OnNewtonFailure(h, solve, std::move(deps));
    return;
  }

  const bool lte_active = !restart_ && steps_since_restart_ >= 1 && window.size() >= 2;
  const engine::StepControlParams params =
      ParamsWithCap(solve.plan.order, options_.sim.step_growth);
  const engine::StepAssessment assess =
      engine::AssessStep(solve.point->x, solve.predicted, h, lte_active, params);

  if (!assess.accept && h > limits_.hmin * (1.0 + 1e-6)) {
    Record(SolveKind::kRejected, solve, std::move(deps), /*useful=*/false);
    OnLteRejection(assess, h);
    return;
  }

  const int id = Record(SolveKind::kLeading, solve, std::move(deps), /*useful=*/true);
  AcceptPoint(solve.point, id, /*leading=*/true);
  OnLeadingAccepted(assess, clip.hit_breakpoint, options_.sim.step_growth, h);
}

}  // namespace wavepipe::pipeline
