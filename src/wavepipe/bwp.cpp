// Backward pipelining.
//
// While the leading thread solves t_new = t_n + h (with h allowed up to the
// RAISED growth cap), helper threads concurrently solve full-accuracy
// intermediate points inside the trailing interval (t_{n-1}, t_n).  All
// solves depend only on already-accepted history, so they are independent
// tasks.  When everything joins, the leading candidate is assessed against a
// predictor built over the DENSIFIED history (the backward points sit right
// behind the leading edge), which is what justifies trusting the LTE
// estimate across the larger step.  Acceptance is still the unchanged LTE
// test — backward pipelining can only make the controller better informed,
// never bypass it.
#include "wavepipe/driver.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace wavepipe::pipeline {

std::vector<PipelineDriver::HelperTask> PipelineDriver::LaunchBackwardTasks(
    int count, int first_slot) {
  std::vector<HelperTask> tasks;
  if (count <= 0) return tasks;
  const engine::SolutionPointPtr prev = history_.FromNewest(1);
  const double t_now = history_.newest_time();
  const double interval = t_now - prev->time;

  int slot = first_slot;
  for (int i = 1; i <= count; ++i) {
    // The policy places a single helper (fixed mode answers the static
    // bwp_backward_fraction); multiple helpers stay evenly spaced.
    const double fraction = (count == 1) ? policy_.ChooseBackwardFraction()
                                         : static_cast<double>(i) / (count + 1);
    const double t_b = prev->time + fraction * interval;
    // Degenerate slivers are numerically useless; skip them.
    if (t_b - prev->time <= limits_.hmin || t_now - t_b <= limits_.hmin) continue;

    // A backward solve may only see history strictly before its own time.
    engine::HistoryWindow window;
    for (const auto& point : history_.Window(5)) {
      if (point->time < t_b - limits_.hmin) window.push_back(point);
    }
    if (window.empty()) continue;

    HelperTask task;
    task.time = t_b;
    task.deps = DepsOf(window);
    task.future = SubmitSolve(slot++, std::move(window), t_b, /*restart=*/false);
    tasks.push_back(std::move(task));
  }
  return tasks;
}

void PipelineDriver::JoinAndPublishBackward(std::vector<HelperTask>& tasks) {
  for (auto& task : tasks) {
    engine::StepSolveResult back = JoinSolve(task.future);
    result_.sched.backward_solves += 1;
    CountSchemeBackward();
    if (!back.converged) {
      WP_DEBUG << "bwp: backward solve at t=" << task.time << " failed Newton; dropped";
      Record(SolveKind::kRejected, back, std::move(task.deps), /*useful=*/false);
      continue;
    }
    back.point->auxiliary = true;
    const int id =
        Record(SolveKind::kBackward, back, std::move(task.deps), /*useful=*/true);
    AcceptPoint(back.point, id, /*leading=*/false);
  }
}

void PipelineDriver::RunRoundBackward() {
  const int nb = BackwardPointCount();
  if (nb == 0) {
    RunRoundSerial();
    return;
  }
  const double cap = BwpGrowthCap(nb);
  const double t_now = history_.newest_time();

  h_ = std::clamp(h_, limits_.hmin, limits_.hmax);
  const Clip clip = ClipStep(t_now, h_);
  const double h = clip.t_new - t_now;

  // Launch the leading solve and every backward solve concurrently.
  const engine::HistoryWindow lead_window = history_.Window(4);
  std::vector<int> lead_deps = DepsOf(lead_window);
  auto lead_future = SubmitSolve(0, lead_window, clip.t_new, /*restart=*/false);
  std::vector<HelperTask> backward = LaunchBackwardTasks(nb, /*first_slot=*/1);

  engine::StepSolveResult lead = JoinSolve(lead_future);

  // Publish converged backward points before assessing the leading
  // candidate: the dense predictor below must see them.  Joining them even
  // when the lead failed keeps the round exception-safe — every in-flight
  // future is drained before any failure is acted on.
  JoinAndPublishBackward(backward);

  if (!lead.converged) {
    OnNewtonFailure(h, lead, std::move(lead_deps));
    return;
  }

  // Re-assess against the densified history: the newest (order + 1) points
  // now include the backward points right behind the leading edge.
  engine::HistoryWindow dense;
  for (const auto& point : history_.Window(4)) {
    if (point->time < clip.t_new) dense.push_back(point);
  }
  std::vector<double> dense_prediction(lead.point->x.size());
  engine::PredictSolution(dense, lead.plan.order + 1, clip.t_new, dense_prediction);

  const engine::StepControlParams params = ParamsWithCap(lead.plan.order, cap);
  const engine::StepAssessment assess =
      engine::AssessStep(lead.point->x, dense_prediction, h, /*lte_active=*/true, params);

  if (!assess.accept && h > limits_.hmin * (1.0 + 1e-6)) {
    Record(SolveKind::kRejected, lead, std::move(lead_deps), /*useful=*/false);
    OnLteRejection(assess, h);
    return;
  }

  const int id = Record(SolveKind::kLeading, lead, std::move(lead_deps), /*useful=*/true);
  AcceptPoint(lead.point, id, /*leading=*/true);
  OnLeadingAccepted(assess, clip.hit_breakpoint, cap, h);
}

}  // namespace wavepipe::pipeline
