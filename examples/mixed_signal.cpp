// Mixed-signal example: an analog sine source driving a diode clipper whose
// output feeds a CMOS inverter chain — the "general analog and digital ICs"
// combination the paper's abstract targets, captured as a SPICE deck.
// Forward pipelining does the heavy lifting here: smooth analog stretches
// predict well, so speculation lands.
//
//   ./mixed_signal [threads=3]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "netlist/elaborate.hpp"
#include "util/table.hpp"
#include "wavepipe/virtual_pipeline.hpp"
#include "wavepipe/wavepipe.hpp"

using namespace wavepipe;

namespace {

constexpr const char* kDeck = R"(mixed-signal front end
* analog input stage: attenuated sine into a diode clamp
VIN ain 0 SIN(1.25 2.0 25meg)
RIN ain clip 2k
D1 clip 0 dclamp
D2 0 clip dclamp
RB clip mid 10k
CB mid 0 40f

* digital back end: 2.5V CMOS inverter chain squaring the clamped signal
VDD vdd 0 2.5
.model dclamp D (is=2e-14 n=1.1 cj0=80f)
.model nmosd NMOS (vto=0.7 kp=120u gamma=0.45 lambda=0.04 tox=10n)
.model pmosd PMOS (vto=-0.8 kp=40u gamma=0.5 lambda=0.05 tox=10n)
MP1 d1 mid vdd vdd pmosd W=4u L=1u
MN1 d1 mid 0 0 nmosd W=2u L=1u
MP2 d2 d1 vdd vdd pmosd W=8u L=1u
MN2 d2 d1 0 0 nmosd W=4u L=1u
CL1 d1 0 15f
CL2 d2 0 30f

.tran 0.2n 160n
.print v(ain) v(mid) v(d2)
.options reltol=1e-3
.end
)";

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 3;

  auto e = netlist::ParseAndElaborate(kDeck);
  engine::MnaStructure mna(*e.circuit);
  std::printf("'%s': %d unknowns, %zu devices\n\n", e.title.c_str(),
              e.circuit->num_unknowns(), e.circuit->num_devices());

  pipeline::WavePipeOptions serial_options;
  serial_options.scheme = pipeline::Scheme::kSerial;
  serial_options.sim = e.sim_options;
  const auto serial = pipeline::RunWavePipe(*e.circuit, mna, e.spec, serial_options);
  const double serial_makespan =
      pipeline::ReplayOnWorkers(serial.ledger, 1).makespan_seconds;

  util::Table table({"scheme", "rounds", "spec acc %", "repair iters/solve", "dev (mV)",
                     "model speedup"});
  table.AddRow({"serial", util::Table::Cell(serial.sched.rounds), "-", "-", "0",
                "1.00"});
  for (auto scheme : {pipeline::Scheme::kForward, pipeline::Scheme::kCombined}) {
    pipeline::WavePipeOptions options;
    options.scheme = scheme;
    options.threads = threads;
    options.sim = e.sim_options;
    const auto res = pipeline::RunWavePipe(*e.circuit, mna, e.spec, options);
    const auto replay = pipeline::ReplayOnWorkers(res.ledger, threads);
    const double repair_iters =
        res.sched.repair_solves
            ? static_cast<double>(res.sched.repair_newton_iterations) /
                  static_cast<double>(res.sched.repair_solves)
            : 0.0;
    table.AddRow(
        {pipeline::SchemeName(scheme), util::Table::Cell(res.sched.rounds),
         util::Table::Cell(100 * res.sched.speculation_acceptance(), 3),
         util::Table::Cell(repair_iters, 3),
         util::Table::Cell(engine::Trace::MaxDeviationAll(serial.trace, res.trace) * 1e3,
                           3),
         util::Table::Cell(serial_makespan / replay.makespan_seconds, 3)});
  }
  table.Print(std::cout);

  std::printf("\nclipped analog node and squared digital output:\n");
  util::AsciiChart chart(72, 12);
  chart.AddSeries("v(mid)", serial.trace.Series(1));
  chart.AddSeries("v(d2)", serial.trace.Series(2));
  std::printf("%s", chart.ToString().c_str());
  return 0;
}
