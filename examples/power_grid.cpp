// Power-grid IR-drop transient: a large linear RC mesh with switching
// current loads — the "interconnect-dominated" workload where backward
// pipelining shines (step growth is cap-limited after every load switch).
//
//   ./power_grid [rows=24] [cols=24] [threads=3]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "circuits/generators.hpp"
#include "engine/transient.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "wavepipe/virtual_pipeline.hpp"
#include "wavepipe/wavepipe.hpp"

using namespace wavepipe;

int main(int argc, char** argv) {
  const int rows = argc > 1 ? std::atoi(argv[1]) : 24;
  const int cols = argc > 2 ? std::atoi(argv[2]) : 24;
  const int threads = argc > 3 ? std::atoi(argv[3]) : 3;

  auto gen = circuits::MakeRcMesh(rows, cols);
  util::WallTimer setup_timer;
  engine::MnaStructure mna(*gen.circuit);
  std::printf("power grid %dx%d: %d unknowns, %zu devices, %zu Jacobian nnz "
              "(setup %.0f ms)\n\n",
              rows, cols, gen.circuit->num_unknowns(), gen.circuit->num_devices(),
              mna.nnz(), setup_timer.Millis());

  // Serial baseline.
  pipeline::WavePipeOptions serial_options;
  serial_options.scheme = pipeline::Scheme::kSerial;
  util::WallTimer serial_timer;
  const auto serial = pipeline::RunWavePipe(*gen.circuit, mna, gen.spec, serial_options);
  const double serial_wall = serial_timer.Seconds();
  const double serial_makespan =
      pipeline::ReplayOnWorkers(serial.ledger, 1).makespan_seconds;
  std::printf("serial: %zu steps in %.2f s wall (%.3f s solver CPU)\n",
              serial.stats.steps_accepted, serial_wall, serial_makespan);

  // Worst IR drop seen at the grid centre (probe 1).
  double worst_drop = 0.0;
  for (std::size_t i = 0; i < serial.trace.num_samples(); ++i) {
    worst_drop = std::max(worst_drop, 1.8 - serial.trace.value(i, 1));
  }
  std::printf("worst IR drop at grid centre: %.1f mV of the 1.8 V supply\n\n",
              worst_drop * 1e3);

  util::Table table(
      {"scheme", "rounds", "backward", "speculative", "accepted", "model speedup"});
  table.AddRow({"serial", util::Table::Cell(serial.sched.rounds), "0", "0", "0", "1.00"});

  for (auto scheme : {pipeline::Scheme::kBackward, pipeline::Scheme::kForward,
                      pipeline::Scheme::kCombined}) {
    pipeline::WavePipeOptions options;
    options.scheme = scheme;
    options.threads = threads;
    const auto res = pipeline::RunWavePipe(*gen.circuit, mna, gen.spec, options);
    const auto replay = pipeline::ReplayOnWorkers(res.ledger, threads);
    const double deviation = engine::Trace::MaxDeviationAll(serial.trace, res.trace);
    table.AddRow({pipeline::SchemeName(scheme), util::Table::Cell(res.sched.rounds),
                  util::Table::Cell(res.sched.backward_solves),
                  util::Table::Cell(res.sched.speculative_solves),
                  util::Table::Cell(res.sched.speculative_accepted),
                  util::Table::Cell(serial_makespan / replay.makespan_seconds, 3)});
    if (deviation > 0.02) {
      std::printf("WARNING: %s deviates %.3g V from serial\n",
                  pipeline::SchemeName(scheme), deviation);
    }
  }
  table.Print(std::cout);
  std::printf("\n(x%d virtual workers; see DESIGN.md for the wall-clock substitution)\n",
              threads);
  return 0;
}
