// Quickstart: build a circuit two ways (C++ builder API and a SPICE deck),
// run a serial transient and a WavePipe transient, and compare.
//
//   ./quickstart
//
// Walks through the full public API surface a new user needs:
//   Circuit / devices          — schematic capture in C++
//   netlist::ParseAndElaborate — the same circuit from deck text
//   MnaStructure               — one-time analysis setup
//   RunTransientSerial         — the conventional loop
//   pipeline::RunWavePipe      — the paper's parallel schemes
#include <cstdio>

#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "engine/transient.hpp"
#include "netlist/elaborate.hpp"
#include "util/table.hpp"
#include "wavepipe/virtual_pipeline.hpp"
#include "wavepipe/wavepipe.hpp"

using namespace wavepipe;

int main() {
  std::printf("== WavePipe quickstart ==\n\n");

  // ------------------------------------------------------------------
  // 1. Build an RC low-pass filter with the C++ API.
  // ------------------------------------------------------------------
  engine::Circuit circuit;
  const int in = circuit.AddNode("in");
  const int out = circuit.AddNode("out");
  circuit.Emplace<devices::VoltageSource>(
      "vin", in, devices::kGround,
      std::make_unique<devices::PulseWaveform>(/*v1=*/0.0, /*v2=*/1.0, /*delay=*/0.1e-3,
                                               /*rise=*/1e-6, /*fall=*/1e-6,
                                               /*width=*/2e-3, /*period=*/4e-3));
  circuit.Emplace<devices::Resistor>("r1", in, out, 1e3);       // 1 kOhm
  circuit.Emplace<devices::Capacitor>("c1", out, devices::kGround, 1e-6);  // 1 uF
  circuit.Finalize();

  engine::MnaStructure mna(circuit);
  std::printf("circuit: %d nodes, %d branch currents, %zu devices, %zu Jacobian nnz\n",
              circuit.num_nodes(), circuit.num_branches(), circuit.num_devices(),
              mna.nnz());

  // ------------------------------------------------------------------
  // 2. Serial transient (the baseline SPICE loop).
  // ------------------------------------------------------------------
  engine::TransientSpec spec;
  spec.tstop = 8e-3;
  spec.tstep = 20e-6;
  spec.probes.unknowns = {in, out};
  spec.probes.names = {"in", "out"};

  engine::SimOptions sim;  // SPICE-default tolerances; see engine/options.hpp
  const auto serial = engine::RunTransientSerial(circuit, mna, spec, sim);
  std::printf("\nserial: %zu accepted steps, %zu LTE rejections, %llu Newton iterations\n",
              serial.stats.steps_accepted, serial.stats.steps_rejected_lte,
              static_cast<unsigned long long>(serial.stats.newton_iterations));
  std::printf("v(out) at 1.1 ms = %.4f V (charging toward 1 V, tau = 1 ms)\n",
              serial.trace.Interpolate(1.1e-3, 1));

  // ------------------------------------------------------------------
  // 3. The same analysis under WavePipe (combined scheme, 3 threads).
  // ------------------------------------------------------------------
  pipeline::WavePipeOptions wp;
  wp.scheme = pipeline::Scheme::kCombined;
  wp.threads = 3;
  wp.sim = sim;
  const auto piped = pipeline::RunWavePipe(circuit, mna, spec, wp);

  const double deviation = engine::Trace::MaxDeviationAll(serial.trace, piped.trace);
  const auto replay = pipeline::ReplayOnWorkers(piped.ledger, wp.threads);
  std::printf("\nwavepipe/combined x3: %zu rounds (serial needed %zu), "
              "max waveform deviation %.3g V\n",
              piped.sched.rounds, serial.stats.steps_accepted, deviation);
  std::printf("  backward solves: %zu, speculative: %zu (%.0f%% accepted)\n",
              piped.sched.backward_solves, piped.sched.speculative_solves,
              100 * piped.sched.speculation_acceptance());
  std::printf("  modeled 3-core runtime: %.3g s of %.3g s total work (%.0f%% util)\n",
              replay.makespan_seconds, replay.busy_seconds, 100 * replay.utilization);

  // ------------------------------------------------------------------
  // 4. The same circuit from SPICE deck text.
  // ------------------------------------------------------------------
  const char* deck = R"(quickstart rc filter
VIN in 0 DC 0 PULSE(0 1 0.1m 1u 1u 2m 4m)
R1 in out 1k
C1 out 0 1u
.tran 20u 8m
.print v(in) v(out)
.end
)";
  auto elaborated = netlist::ParseAndElaborate(deck);
  engine::MnaStructure deck_mna(*elaborated.circuit);
  const auto from_deck = engine::RunTransientSerial(*elaborated.circuit, deck_mna,
                                                    elaborated.spec, elaborated.sim_options);
  std::printf("\nfrom deck '%s': v(out) at 1.1 ms = %.4f V (matches builder API)\n",
              elaborated.title.c_str(), from_deck.trace.Interpolate(1.1e-3, 1));

  // ------------------------------------------------------------------
  // 5. ASCII waveform, because every simulator demo needs one.
  // ------------------------------------------------------------------
  util::AsciiChart chart(72, 14);
  chart.AddSeries("v(in)", serial.trace.Series(0));
  chart.AddSeries("v(out)", serial.trace.Series(1));
  std::printf("\n%s\n", chart.ToString().c_str());
  return 0;
}
