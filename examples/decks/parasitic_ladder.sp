parasitic ladder
* A digital-style driver net loaded by three extracted-parasitic RC ladders
* (the post-layout pattern src/reduce targets): every node past the driver
* is touched only by R/C, so --reduce collapses the whole parasitic network
* into one Schur equivalent with a single port at drv — 19 of 20 nodes
* eliminated, 37 devices absorbed.  Probing interiors (v(net), v(a4), ...)
* exercises on-demand back-substitution.
V1 drv 0 DC 0 PULSE(0 1.8 50n 2n 2n 100n 200n)
Rdrv drv net 50
* ladder a: 8 segments
Ra1 net a1 120
Ca1 a1 0 15f
Ra2 a1 a2 120
Ca2 a2 0 15f
Ra3 a2 a3 120
Ca3 a3 0 15f
Ra4 a3 a4 120
Ca4 a4 0 15f
Ra5 a4 a5 120
Ca5 a5 0 15f
Ra6 a5 a6 120
Ca6 a6 0 15f
Ra7 a6 a7 120
Ca7 a7 0 15f
Ra8 a7 a8 120
Ca8 a8 0 15f
* ladder b: 6 segments
Rb1 net b1 200
Cb1 b1 0 10f
Rb2 b1 b2 200
Cb2 b2 0 10f
Rb3 b2 b3 200
Cb3 b3 0 10f
Rb4 b3 b4 200
Cb4 b4 0 10f
Rb5 b4 b5 200
Cb5 b5 0 10f
Rb6 b5 b6 200
Cb6 b6 0 10f
* ladder c: 4 segments, heavier load at the sink
Rc1 net c1 80
Cc1 c1 0 20f
Rc2 c1 c2 80
Cc2 c2 0 20f
Rc3 c2 c3 80
Cc3 c3 0 20f
Rc4 c3 c4 80
Cc4 c4 0 40f
.tran 1n 400n
.print v(drv) v(net) v(a8) v(a4) v(c4)
.end
