clipper
* Antiparallel diode clipper on a 10 kHz sine: a small nonlinear deck for
* exercising the Newton/chord paths from the command line.
V1 in 0 SIN(0 3 10k)
R1 in out 1k
D1 out 0 dclip
D2 0 out dclip
.model dclip D (is=1e-14 n=1.2)
.tran 1u 300u
.print v(in) v(out)
.end
