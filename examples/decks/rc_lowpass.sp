rc lowpass
* First-order RC low-pass driven by a pulse source.  Small enough to run in
* milliseconds; used by the CI observability job and the EXPERIMENTS.md
* chrome://tracing walkthrough.
V1 in 0 DC 0 PULSE(0 1 100u 1u 1u 10m 20m)
R1 in out 1k
C1 out 0 1u
.tran 10u 5m
.print v(out) v(in)
.end
