ring3
* Three-stage CMOS ring oscillator: the canonical deck for the adaptive
* speculation policy's event-aware predictor.  The autonomous oscillation
* makes polynomial extrapolation miss at every output transition, so the
* adaptive policy (--spec-policy adaptive) throttles the chain depth down,
* converts forward slots into backward points, and snaps speculative points
* onto predicted waveform events instead of extrapolating past them.
*
* Try:
*   wavespice examples/decks/ring_oscillator.sp --scheme combined --threads 4 \
*       --spec-policy adaptive --stats --compare-serial
.model nmos1 NMOS (vto=0.7 kp=120u gamma=0.45 phi=0.65 lambda=0.04)
.model pmos1 PMOS (vto=-0.8 kp=40u gamma=0.5 phi=0.65 lambda=0.05)
Vdd vdd 0 2.5
* Stage 1: s1 -> s2
MP1 s2 s1 vdd vdd pmos1 W=4u L=1u
MN1 s2 s1 0 0 nmos1 W=2u L=1u
CL1 s2 0 20f
* Stage 2: s2 -> s3
MP2 s3 s2 vdd vdd pmos1 W=4u L=1u
MN2 s3 s2 0 0 nmos1 W=2u L=1u
CL2 s3 0 20f
* Stage 3: s3 -> s1, closing the ring
MP3 s1 s3 vdd vdd pmos1 W=4u L=1u
MN3 s1 s3 0 0 nmos1 W=2u L=1u
CL3 s1 0 20f
* Startup kick: a short current pulse pulls stage 1 off the metastable
* mid-rail operating point the DC solve finds for a symmetric ring.
Ikick 0 s1 PULSE(0 200u 10p 5p 5p 100p 1)
.tran 2p 6n
.print v(s1) v(s2)
.end
