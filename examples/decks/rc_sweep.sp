rc sweep
* Parameterized RC lowpass for the batch engine (--sweep): a 3-point .step
* over the series resistance crossed with 4 seeded Monte Carlo samples gives
* a 12-variant grid whose aggregate CSV must be byte-identical at any
* --threads — CI's batch-determinism job diffs exactly that.
.param rload=1k
V1 in 0 DC 0 PULSE(0 1 1u 100n 100n 10u 20u) ac 1
R1 in out {rload}
C1 out 0 1n
.step param rload list 500 1k 2k
.mc 4 variation=0.05
.tran 0.2u 30u
.print v(in) v(out)
.end
