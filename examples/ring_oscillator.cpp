// Ring oscillator: the canonical analog/autonomous benchmark from the paper's
// domain.  Simulates an N-stage CMOS ring with every WavePipe scheme,
// measures the oscillation period, and reports the pipeline scheduling
// statistics side by side.
//
//   ./ring_oscillator [stages=9] [threads=3]
#include <cmath>
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <vector>

#include "circuits/generators.hpp"
#include "engine/transient.hpp"
#include "util/table.hpp"
#include "wavepipe/virtual_pipeline.hpp"
#include "wavepipe/wavepipe.hpp"

using namespace wavepipe;

namespace {

/// Oscillation period from mid-rail crossings of the first probe.
double MeasurePeriod(const engine::Trace& trace, double vdd) {
  std::vector<double> rising;
  const double mid = vdd / 2;
  for (std::size_t i = 1; i < trace.num_samples(); ++i) {
    const double a = trace.value(i - 1, 0) - mid;
    const double b = trace.value(i, 0) - mid;
    if (a < 0 && b >= 0) {
      const double t0 = trace.time(i - 1), t1 = trace.time(i);
      rising.push_back(t0 + (t1 - t0) * (-a) / (b - a));
    }
  }
  if (rising.size() < 3) return 0.0;
  // Average over the later cycles (startup transient excluded).
  const std::size_t begin = rising.size() / 2;
  return (rising.back() - rising[begin]) / static_cast<double>(rising.size() - 1 - begin);
}

}  // namespace

int main(int argc, char** argv) {
  const int stages = argc > 1 ? std::atoi(argv[1]) : 9;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 3;
  const double vdd = 2.5;

  auto gen = circuits::MakeRingOscillator(stages, vdd);
  engine::MnaStructure mna(*gen.circuit);
  std::printf("%d-stage CMOS ring oscillator: %d unknowns, %zu devices, window %.3g s\n\n",
              stages, gen.circuit->num_unknowns(), gen.circuit->num_devices(),
              gen.spec.tstop);

  util::Table table({"scheme", "threads", "rounds", "steps", "newton iters", "period (ps)",
                     "max dev (mV)", "model speedup"});

  engine::Trace serial_trace;
  double serial_makespan = 0.0;
  for (auto scheme : {pipeline::Scheme::kSerial, pipeline::Scheme::kBackward,
                      pipeline::Scheme::kForward, pipeline::Scheme::kCombined}) {
    pipeline::WavePipeOptions options;
    options.scheme = scheme;
    options.threads = threads;
    const auto res = pipeline::RunWavePipe(*gen.circuit, mna, gen.spec, options);
    const int workers = scheme == pipeline::Scheme::kSerial ? 1 : options.threads;
    const auto replay = pipeline::ReplayOnWorkers(res.ledger, workers);

    if (scheme == pipeline::Scheme::kSerial) {
      serial_trace = res.trace;
      serial_makespan = replay.makespan_seconds;
    }
    const double deviation =
        engine::Trace::MaxDeviationAll(serial_trace, res.trace) * 1e3;
    const double period_ps = MeasurePeriod(res.trace, vdd) * 1e12;
    table.AddRow({pipeline::SchemeName(scheme), util::Table::Cell(workers),
                  util::Table::Cell(res.sched.rounds),
                  util::Table::Cell(res.stats.steps_accepted),
                  util::Table::Cell(static_cast<std::size_t>(res.stats.newton_iterations)),
                  util::Table::Cell(period_ps, 4), util::Table::Cell(deviation, 3),
                  util::Table::Cell(serial_makespan / replay.makespan_seconds, 3)});
  }
  table.Print(std::cout);

  std::printf("\nwaveform (serial, stage-0 output):\n");
  util::AsciiChart chart(72, 12);
  chart.AddSeries("v(s0)", serial_trace.Series(0));
  std::printf("%s", chart.ToString().c_str());
  std::printf("\n'model speedup' = serial ledger makespan / scheme makespan on %d virtual "
              "workers\n(thread-CPU cost replay; see DESIGN.md on the 1-vCPU substitution).\n",
              threads);
  return 0;
}
