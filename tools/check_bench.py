#!/usr/bin/env python3
"""Bench regression gate for CI.

Compares freshly generated BENCH_*.json artifacts against the committed
baselines and fails (exit 1) when:

  * a modeled-speedup metric regresses by more than --tolerance (default 15%);
  * an engagement/accuracy guard that was true in the baseline turns false
    (e.g. `speedup_1p2_on_at_least_two_circuits`, `bypass engaged` style
    booleans, `disabled_rerun_bit_identical`);
  * a metric falls below an absolute floor declared by the baseline's
    top-level `min_ratio` object: each entry maps a key substring to the
    minimum every matching numeric metric in the FRESH artifact must reach
    (e.g. `{"adaptive_over_fixed_ratio": 0.999}` gates "adaptive never loses
    to fixed on any deck" independently of the relative tolerance).

Only DETERMINISTIC modeled metrics are gated.  Wall-clock numbers
(`speedup`, `*_wall_seconds`, `*_seconds_per_pass`) vary with machine load
and are reported but never gated; `barrier_model_speedup*` is a
deliberately pessimistic contrast model (it gates the runtime serial
fallback, not performance) and is likewise report-only.

A per-metric delta table goes to stdout and, when $GITHUB_STEP_SUMMARY is
set, into the job summary as GitHub-flavored markdown.  --report also writes
a machine-readable bench_report.json (per-file rows + failures + exit code).

Exit codes: 0 all gates passed, 1 regression / guard flip / floor breach,
2 infrastructure problem (baseline or fresh artifact missing).  When both
kinds of failure occur, the regression exit code (1) wins — a missing file
next to a real regression should page as a regression.

Usage:
    check_bench.py --baseline-dir <committed> --current-dir <fresh> \
                   [--tolerance 0.15] [--report bench_report.json]
    check_bench.py --self-test
"""

import argparse
import json
import os
import sys
import tempfile

BENCH_FILES = ["BENCH_assembly.json", "BENCH_factor.json", "BENCH_bypass.json",
               "BENCH_pipeline.json", "BENCH_partition.json",
               "BENCH_resilience.json", "BENCH_reduction.json",
               "BENCH_batch.json"]

# Numeric metrics gated on regression.  A metric is gated when its key path
# matches one of these predicates; higher is better for all of them.
GATED_KEY_SUBSTRINGS = [
    "replay_speedup",            # BENCH_factor: list-scheduled DAG replay
    "modeled_refactor_speedup",  # counter blocks: lu.* / sparse_lu.*
    "modeled_speedup",           # BENCH_pipeline: virtual-replay makespans
    "adaptive_over_fixed_ratio", # BENCH_pipeline: policy vs fixed scheduler
    "modeled_batch_speedup",     # BENCH_batch: shared-vs-cold sweep throughput
]

# Metrics that *look* like speedups but must never gate.
UNGATED_KEY_SUBSTRINGS = [
    "barrier_model_speedup",  # pessimistic fallback-gate model, not perf
    "wall",                   # anything wall-clock
    "seconds_per_pass",       # measured on a possibly loaded machine
]


def is_gated(path):
    if any(s in path for s in UNGATED_KEY_SUBSTRINGS):
        return False
    return any(s in path for s in GATED_KEY_SUBSTRINGS)


def flatten(node, prefix, out):
    """Flattens dicts/lists-of-named-dicts into {path: scalar}.

    Circuit arrays are keyed by each element's "name" so baselines and
    fresh runs line up even if the suite order changes.
    """
    if isinstance(node, dict):
        for key, value in node.items():
            flatten(value, f"{prefix}{key}." if prefix else f"{key}.", out)
        return
    if isinstance(node, list):
        for index, value in enumerate(node):
            tag = value.get("name", str(index)) if isinstance(value, dict) else str(index)
            flatten(value, f"{prefix}{tag}.", out)
        return
    out[prefix.rstrip(".")] = node


def compare_file(name, baseline, current, tolerance):
    """Returns (rows, failures) for one bench artifact."""
    base_flat, cur_flat = {}, {}
    flatten(baseline, "", base_flat)
    flatten(current, "", cur_flat)

    rows = []
    failures = []
    for path in sorted(base_flat):
        base_value = base_flat[path]
        if path not in cur_flat:
            failures.append(f"{name}: metric `{path}` missing from fresh run")
            rows.append((path, base_value, "(missing)", "", "FAIL"))
            continue
        cur_value = cur_flat[path]

        if isinstance(base_value, bool):
            if base_value and not cur_value:
                failures.append(f"{name}: guard `{path}` flipped true -> false")
                rows.append((path, base_value, cur_value, "", "FAIL"))
            elif base_value != cur_value:
                rows.append((path, base_value, cur_value, "", "improved"))
            continue

        if not isinstance(base_value, (int, float)) or not is_gated(path):
            continue
        delta = (cur_value - base_value) / base_value if base_value else 0.0
        status = "ok"
        if delta < -tolerance:
            status = "FAIL"
            failures.append(
                f"{name}: `{path}` regressed {-delta:.1%} "
                f"({base_value:.4g} -> {cur_value:.4g}), tolerance {tolerance:.0%}"
            )
        rows.append((path, f"{base_value:.4g}", f"{cur_value:.4g}",
                     f"{delta:+.1%}", status))

    # Absolute floors: the baseline's min_ratio block is a gate SPEC, not a
    # metric — each entry applies to every matching numeric in the fresh run.
    min_ratio = baseline.get("min_ratio", {})
    if isinstance(min_ratio, dict):
        for substring, floor in min_ratio.items():
            for path in sorted(cur_flat):
                if path.startswith("min_ratio."):
                    continue  # the spec itself, not a gated metric
                value = cur_flat[path]
                if substring not in path or not isinstance(value, (int, float)):
                    continue
                if isinstance(value, bool):
                    continue
                status = "ok"
                if value < floor:
                    status = "FAIL"
                    failures.append(
                        f"{name}: `{path}` = {value:.4g} below min_ratio "
                        f"floor {floor:.4g}"
                    )
                rows.append((path, f">= {floor:.4g}", f"{value:.4g}", "", status))
    return rows, failures


def render_table(name, rows):
    lines = [f"\n### {name}", "",
             "| metric | baseline | current | delta | status |",
             "|---|---:|---:|---:|---|"]
    for path, base_value, cur_value, delta, status in rows:
        lines.append(f"| `{path}` | {base_value} | {cur_value} | {delta} | {status} |")
    if len(rows) == 0:
        lines.append("| (no gated metrics) | | | | |")
    return "\n".join(lines) + "\n"


def run_gate(baseline_dir, current_dir, tolerance):
    """Runs every bench file through the gate.

    Returns (summary_text, report_dict, exit_code).  Regression failures
    (exit 1) take precedence over infrastructure failures (exit 2).
    """
    regression_failures = []
    missing_failures = []
    report = {"schema": "wavepipe.bench_report.v1", "tolerance": tolerance,
              "files": [], "failures": []}
    summary = ["## Bench regression gate",
               f"Tolerance: {tolerance:.0%} on modeled speedups; "
               "boolean guards must not flip true → false."]
    for name in BENCH_FILES:
        base_path = os.path.join(baseline_dir, name)
        cur_path = os.path.join(current_dir, name)
        if not os.path.exists(base_path):
            missing_failures.append(f"missing baseline {base_path}")
            report["files"].append({"name": name, "status": "missing-baseline"})
            continue
        if not os.path.exists(cur_path):
            missing_failures.append(f"missing fresh artifact {cur_path}")
            report["files"].append({"name": name, "status": "missing-fresh"})
            continue
        with open(base_path) as f:
            baseline = json.load(f)
        with open(cur_path) as f:
            current = json.load(f)
        rows, failures = compare_file(name, baseline, current, tolerance)
        regression_failures.extend(failures)
        summary.append(render_table(name, rows))
        report["files"].append({
            "name": name,
            "status": "fail" if failures else "ok",
            "rows": [{"metric": path, "baseline": str(base_value),
                      "current": str(cur_value), "delta": delta,
                      "status": status}
                     for path, base_value, cur_value, delta, status in rows],
        })

    all_failures = regression_failures + missing_failures
    if all_failures:
        summary.append("\n### Failures\n")
        summary.extend(f"- {failure}" for failure in all_failures)
    else:
        summary.append("\nAll gates passed.")
    report["failures"] = all_failures

    exit_code = 0
    if missing_failures:
        exit_code = 2
    if regression_failures:
        exit_code = 1  # regressions win over infrastructure problems
    report["exit_code"] = exit_code
    return "\n".join(summary), report, exit_code


def self_test():
    """Self-contained checks of the gate logic (no pytest dependency)."""
    failures = []

    def expect(ok, what):
        print(f"  {what:<62} {'ok' if ok else 'FAIL'}")
        if not ok:
            failures.append(what)

    # flatten: nested dicts and name-keyed lists.
    flat = {}
    flatten({"a": {"b": 1.5}, "runs": [{"name": "x", "v": 2}]}, "", flat)
    expect(flat == {"a.b": 1.5, "runs.x.name": "x", "runs.x.v": 2},
           "flatten keys nested paths by name")

    # is_gated: gated substrings minus the ungated overrides.
    expect(is_gated("decks.mesh.modeled_batch_speedup"),
           "modeled_batch_speedup is gated")
    expect(not is_gated("decks.mesh.wall_seconds_shared"), "wall clock never gated")
    expect(not is_gated("barrier_model_speedup"), "barrier model never gated")

    # compare_file: regression beyond tolerance fails, within passes.
    _, fails = compare_file("t", {"modeled_speedup": 2.0},
                            {"modeled_speedup": 1.0}, 0.15)
    expect(len(fails) == 1, "50% regression fails at 15% tolerance")
    _, fails = compare_file("t", {"modeled_speedup": 2.0},
                            {"modeled_speedup": 1.9}, 0.15)
    expect(not fails, "5% regression passes at 15% tolerance")

    # Boolean guard: true -> false fails, false -> true improves.
    _, fails = compare_file("t", {"bit_identical": True},
                            {"bit_identical": False}, 0.15)
    expect(len(fails) == 1, "guard flip true -> false fails")
    _, fails = compare_file("t", {"bit_identical": False},
                            {"bit_identical": True}, 0.15)
    expect(not fails, "guard flip false -> true passes")

    # min_ratio floor: applies to every matching numeric in the FRESH run.
    # Real artifacts carry the spec in both docs, so mirror that here.
    spec = {"min_ratio": {"modeled_batch_speedup": 2.0}}
    _, fails = compare_file("t", spec,
                            dict(spec, a={"modeled_batch_speedup": 1.5}), 0.15)
    expect(len(fails) == 1, "min_ratio floor breach fails")
    _, fails = compare_file("t", spec,
                            dict(spec, a={"modeled_batch_speedup": 2.5}), 0.15)
    expect(not fails, "min_ratio floor met passes")

    # Exit codes: 2 for missing files, 1 for regressions, 1 when both.
    with tempfile.TemporaryDirectory() as base, \
         tempfile.TemporaryDirectory() as cur:
        _, _, code = run_gate(base, cur, 0.15)
        expect(code == 2, "all baselines missing -> exit 2")
        for name in BENCH_FILES[:-1]:
            for where in (base, cur):
                with open(os.path.join(where, name), "w") as f:
                    json.dump({"modeled_speedup": 2.0}, f)
        _, _, code = run_gate(base, cur, 0.15)
        expect(code == 2, "one baseline missing -> exit 2")
        with open(os.path.join(base, BENCH_FILES[-1]), "w") as f:
            json.dump({"modeled_batch_speedup": 2.0}, f)
        with open(os.path.join(cur, BENCH_FILES[-1]), "w") as f:
            json.dump({"modeled_batch_speedup": 0.5}, f)
        _, _, code = run_gate(base, cur, 0.15)
        expect(code == 1, "regression -> exit 1")
        os.remove(os.path.join(cur, BENCH_FILES[0]))
        _, _, code = run_gate(base, cur, 0.15)
        expect(code == 1, "regression + missing file -> exit 1 (regression wins)")

    if failures:
        print(f"check_bench --self-test: {len(failures)} failure(s)",
              file=sys.stderr)
        return 1
    print("check_bench --self-test: all checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir",
                        help="directory holding the committed BENCH_*.json")
    parser.add_argument("--current-dir",
                        help="directory holding the freshly generated BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="max allowed fractional regression (default 0.15)")
    parser.add_argument("--report",
                        help="write a machine-readable bench_report.json here")
    parser.add_argument("--self-test", action="store_true",
                        help="run the gate logic's built-in checks and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline_dir or not args.current_dir:
        parser.error("--baseline-dir and --current-dir are required "
                     "(or use --self-test)")

    text, report, exit_code = run_gate(args.baseline_dir, args.current_dir,
                                       args.tolerance)
    print(text)
    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a") as f:
            f.write(text + "\n")
    if args.report:
        with open(args.report, "w") as f:
            json.dump(report, f, indent=2)
        print(f"\ncheck_bench: report written to {args.report}")

    if exit_code:
        print(f"\ncheck_bench: {len(report['failures'])} failure(s)",
              file=sys.stderr)
        return exit_code
    print("\ncheck_bench: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
