#!/usr/bin/env python3
"""Bench regression gate for CI.

Compares freshly generated BENCH_*.json artifacts against the committed
baselines and fails (exit 1) when:

  * a modeled-speedup metric regresses by more than --tolerance (default 15%);
  * an engagement/accuracy guard that was true in the baseline turns false
    (e.g. `speedup_1p2_on_at_least_two_circuits`, `bypass engaged` style
    booleans, `disabled_rerun_bit_identical`);
  * a metric falls below an absolute floor declared by the baseline's
    top-level `min_ratio` object: each entry maps a key substring to the
    minimum every matching numeric metric in the FRESH artifact must reach
    (e.g. `{"adaptive_over_fixed_ratio": 0.999}` gates "adaptive never loses
    to fixed on any deck" independently of the relative tolerance).

Only DETERMINISTIC modeled metrics are gated.  Wall-clock numbers
(`speedup`, `*_wall_seconds`, `*_seconds_per_pass`) vary with machine load
and are reported but never gated; `barrier_model_speedup*` is a
deliberately pessimistic contrast model (it gates the runtime serial
fallback, not performance) and is likewise report-only.

A per-metric delta table goes to stdout and, when $GITHUB_STEP_SUMMARY is
set, into the job summary as GitHub-flavored markdown.

Usage:
    check_bench.py --baseline-dir <committed> --current-dir <fresh> \
                   [--tolerance 0.15]
"""

import argparse
import json
import os
import sys

BENCH_FILES = ["BENCH_assembly.json", "BENCH_factor.json", "BENCH_bypass.json",
               "BENCH_pipeline.json", "BENCH_partition.json",
               "BENCH_resilience.json", "BENCH_reduction.json"]

# Numeric metrics gated on regression.  A metric is gated when its key path
# matches one of these predicates; higher is better for all of them.
GATED_KEY_SUBSTRINGS = [
    "replay_speedup",            # BENCH_factor: list-scheduled DAG replay
    "modeled_refactor_speedup",  # counter blocks: lu.* / sparse_lu.*
    "modeled_speedup",           # BENCH_pipeline: virtual-replay makespans
    "adaptive_over_fixed_ratio", # BENCH_pipeline: policy vs fixed scheduler
]

# Metrics that *look* like speedups but must never gate.
UNGATED_KEY_SUBSTRINGS = [
    "barrier_model_speedup",  # pessimistic fallback-gate model, not perf
    "wall",                   # anything wall-clock
    "seconds_per_pass",       # measured on a possibly loaded machine
]


def is_gated(path):
    if any(s in path for s in UNGATED_KEY_SUBSTRINGS):
        return False
    return any(s in path for s in GATED_KEY_SUBSTRINGS)


def flatten(node, prefix, out):
    """Flattens dicts/lists-of-named-dicts into {path: scalar}.

    Circuit arrays are keyed by each element's "name" so baselines and
    fresh runs line up even if the suite order changes.
    """
    if isinstance(node, dict):
        for key, value in node.items():
            flatten(value, f"{prefix}{key}." if prefix else f"{key}.", out)
        return
    if isinstance(node, list):
        for index, value in enumerate(node):
            tag = value.get("name", str(index)) if isinstance(value, dict) else str(index)
            flatten(value, f"{prefix}{tag}.", out)
        return
    out[prefix.rstrip(".")] = node


def compare_file(name, baseline, current, tolerance):
    """Returns (rows, failures) for one bench artifact."""
    base_flat, cur_flat = {}, {}
    flatten(baseline, "", base_flat)
    flatten(current, "", cur_flat)

    rows = []
    failures = []
    for path in sorted(base_flat):
        base_value = base_flat[path]
        if path not in cur_flat:
            failures.append(f"{name}: metric `{path}` missing from fresh run")
            rows.append((path, base_value, "(missing)", "", "FAIL"))
            continue
        cur_value = cur_flat[path]

        if isinstance(base_value, bool):
            if base_value and not cur_value:
                failures.append(f"{name}: guard `{path}` flipped true -> false")
                rows.append((path, base_value, cur_value, "", "FAIL"))
            elif base_value != cur_value:
                rows.append((path, base_value, cur_value, "", "improved"))
            continue

        if not isinstance(base_value, (int, float)) or not is_gated(path):
            continue
        delta = (cur_value - base_value) / base_value if base_value else 0.0
        status = "ok"
        if delta < -tolerance:
            status = "FAIL"
            failures.append(
                f"{name}: `{path}` regressed {-delta:.1%} "
                f"({base_value:.4g} -> {cur_value:.4g}), tolerance {tolerance:.0%}"
            )
        rows.append((path, f"{base_value:.4g}", f"{cur_value:.4g}",
                     f"{delta:+.1%}", status))

    # Absolute floors: the baseline's min_ratio block is a gate SPEC, not a
    # metric — each entry applies to every matching numeric in the fresh run.
    min_ratio = baseline.get("min_ratio", {})
    if isinstance(min_ratio, dict):
        for substring, floor in min_ratio.items():
            for path in sorted(cur_flat):
                if path.startswith("min_ratio."):
                    continue  # the spec itself, not a gated metric
                value = cur_flat[path]
                if substring not in path or not isinstance(value, (int, float)):
                    continue
                if isinstance(value, bool):
                    continue
                status = "ok"
                if value < floor:
                    status = "FAIL"
                    failures.append(
                        f"{name}: `{path}` = {value:.4g} below min_ratio "
                        f"floor {floor:.4g}"
                    )
                rows.append((path, f">= {floor:.4g}", f"{value:.4g}", "", status))
    return rows, failures


def render_table(name, rows):
    lines = [f"\n### {name}", "",
             "| metric | baseline | current | delta | status |",
             "|---|---:|---:|---:|---|"]
    for path, base_value, cur_value, delta, status in rows:
        lines.append(f"| `{path}` | {base_value} | {cur_value} | {delta} | {status} |")
    if len(rows) == 0:
        lines.append("| (no gated metrics) | | | | |")
    return "\n".join(lines) + "\n"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True,
                        help="directory holding the committed BENCH_*.json")
    parser.add_argument("--current-dir", required=True,
                        help="directory holding the freshly generated BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="max allowed fractional regression (default 0.15)")
    args = parser.parse_args()

    all_failures = []
    summary = ["## Bench regression gate",
               f"Tolerance: {args.tolerance:.0%} on modeled speedups; "
               "boolean guards must not flip true → false."]
    for name in BENCH_FILES:
        base_path = os.path.join(args.baseline_dir, name)
        cur_path = os.path.join(args.current_dir, name)
        if not os.path.exists(base_path):
            all_failures.append(f"missing baseline {base_path}")
            continue
        if not os.path.exists(cur_path):
            all_failures.append(f"missing fresh artifact {cur_path}")
            continue
        with open(base_path) as f:
            baseline = json.load(f)
        with open(cur_path) as f:
            current = json.load(f)
        rows, failures = compare_file(name, baseline, current, args.tolerance)
        all_failures.extend(failures)
        summary.append(render_table(name, rows))

    if all_failures:
        summary.append("\n### Failures\n")
        summary.extend(f"- {failure}" for failure in all_failures)
    else:
        summary.append("\nAll gates passed.")

    text = "\n".join(summary)
    print(text)
    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a") as f:
            f.write(text + "\n")

    if all_failures:
        print(f"\ncheck_bench: {len(all_failures)} failure(s)", file=sys.stderr)
        return 1
    print("\ncheck_bench: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
