// wavespice: command-line SPICE front end for the WavePipe engine.
//
//   wavespice <deck.sp> [options]
//
//   --scheme serial|bwp|fwp|combined   pipelining scheme      (default serial)
//   --threads N                        worker threads          (default 3)
//   --out FILE.csv                     write probed waveforms  (default stdout table off)
//   --chart                            ASCII chart of the probes
//   --stats                            print scheduling/solver statistics
//   --compare-serial                   also run serial, report deviation + speedup
//   --bypass                           enable the device latency bypass (off by default)
//   --bypass-vtol X                    latency tolerance scale (default 1.0)
//   --chord                            enable chord-Newton LU factor reuse
//
// Exit codes: 0 ok, 1 usage, 2 parse/elaboration error, 3 analysis failure.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "netlist/elaborate.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "wavepipe/virtual_pipeline.hpp"
#include "wavepipe/wavepipe.hpp"

using namespace wavepipe;

namespace {

struct CliOptions {
  std::string deck_path;
  pipeline::Scheme scheme = pipeline::Scheme::kSerial;
  int threads = 3;
  std::string csv_out;
  bool chart = false;
  bool stats = false;
  bool compare_serial = false;
  // Both accelerations are opt-in, matching the library default: a plain
  // wavespice run stays bit-exact with prior releases (replay wobble lands
  // within LTE tolerance, but "within tolerance" is not "identical").
  bool bypass = false;
  double bypass_vtol = 1.0;
  bool chord = false;
};

int Usage() {
  std::fprintf(stderr,
               "usage: wavespice <deck.sp> [--scheme serial|bwp|fwp|combined] "
               "[--threads N] [--out file.csv] [--chart] [--stats] "
               "[--compare-serial] [--bypass] [--bypass-vtol X] [--chord]\n");
  return 1;
}

bool ParseArgs(int argc, char** argv, CliOptions* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--scheme") {
      const char* v = next();
      if (!v) return false;
      if (!std::strcmp(v, "serial")) out->scheme = pipeline::Scheme::kSerial;
      else if (!std::strcmp(v, "bwp")) out->scheme = pipeline::Scheme::kBackward;
      else if (!std::strcmp(v, "fwp")) out->scheme = pipeline::Scheme::kForward;
      else if (!std::strcmp(v, "combined")) out->scheme = pipeline::Scheme::kCombined;
      else return false;
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      out->threads = std::atoi(v);
      if (out->threads < 1) return false;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return false;
      out->csv_out = v;
    } else if (arg == "--chart") {
      out->chart = true;
    } else if (arg == "--stats") {
      out->stats = true;
    } else if (arg == "--compare-serial") {
      out->compare_serial = true;
    } else if (arg == "--bypass") {
      out->bypass = true;
    } else if (arg == "--no-bypass") {  // kept for symmetry; off is the default
      out->bypass = false;
    } else if (arg == "--bypass-vtol") {
      const char* v = next();
      if (!v) return false;
      out->bypass_vtol = std::atof(v);
      if (!(out->bypass_vtol > 0.0)) return false;
    } else if (arg == "--chord") {
      out->chord = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else if (out->deck_path.empty()) {
      out->deck_path = arg;
    } else {
      return false;
    }
  }
  return !out->deck_path.empty();
}

void WriteCsv(const engine::Trace& trace, const std::string& path) {
  util::Table table([&] {
    std::vector<std::string> header{"time"};
    for (const auto& name : trace.probes().names) header.push_back("v(" + name + ")");
    return header;
  }());
  for (std::size_t i = 0; i < trace.num_samples(); ++i) {
    std::vector<std::string> row{util::FormatDouble(trace.time(i), 9)};
    for (std::size_t p = 0; p < trace.probes().size(); ++p) {
      row.push_back(util::FormatDouble(trace.value(i, p), 9));
    }
    table.AddRow(std::move(row));
  }
  table.WriteCsv(path);
  std::printf("wrote %zu samples x %zu probes to %s\n", trace.num_samples(),
              trace.probes().size(), path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) return Usage();

  netlist::ElaboratedCircuit elaborated;
  try {
    elaborated = netlist::LoadDeckFile(cli.deck_path);
  } catch (const Error& e) {
    std::fprintf(stderr, "wavespice: %s\n", e.what());
    return 2;
  }
  if (!elaborated.has_tran) {
    std::fprintf(stderr, "wavespice: deck has no .tran card\n");
    return 2;
  }
  std::printf("%s: %d unknowns, %zu devices, tran %g..%g s\n",
              elaborated.title.c_str(), elaborated.circuit->num_unknowns(),
              elaborated.circuit->num_devices(), elaborated.spec.tstart,
              elaborated.spec.tstop);

  try {
    engine::MnaStructure mna(*elaborated.circuit);
    pipeline::WavePipeOptions options;
    options.scheme = cli.scheme;
    options.threads = cli.threads;
    options.sim = elaborated.sim_options;
    options.sim.device_bypass = cli.bypass;
    options.sim.bypass_vtol = cli.bypass_vtol;
    options.sim.chord_newton = cli.chord;
    const auto result =
        pipeline::RunWavePipe(*elaborated.circuit, mna, elaborated.spec, options);

    std::printf("scheme %s: %zu steps, %zu rounds, %llu Newton iterations, "
                "dcop via %s, wall %.3f s\n",
                pipeline::SchemeName(cli.scheme), result.stats.steps_accepted,
                result.sched.rounds,
                static_cast<unsigned long long>(result.stats.newton_iterations),
                result.stats.dcop_strategy.c_str(), result.stats.wall_seconds);

    if (cli.stats) {
      std::printf("  LTE rejections: %zu, Newton rejections: %zu\n",
                  result.stats.steps_rejected_lte, result.stats.steps_rejected_newton);
      std::printf("  LU full factors: %llu, refactors: %llu\n",
                  static_cast<unsigned long long>(result.stats.lu_full_factors),
                  static_cast<unsigned long long>(result.stats.lu_refactors));
      const std::uint64_t bypass_total =
          result.stats.bypassed_evals + result.stats.bypass_full_evals;
      std::printf("  bypassed evals: %llu of %llu bypassable (%.0f%%)\n",
                  static_cast<unsigned long long>(result.stats.bypassed_evals),
                  static_cast<unsigned long long>(bypass_total),
                  bypass_total > 0
                      ? 100.0 * static_cast<double>(result.stats.bypassed_evals) /
                            static_cast<double>(bypass_total)
                      : 0.0);
      if (result.stats.bypass_auto_disables > 0) {
        std::printf("  bypass auto-disabled by the step-floor safety valve "
                    "(%llu time%s)\n",
                    static_cast<unsigned long long>(result.stats.bypass_auto_disables),
                    result.stats.bypass_auto_disables == 1 ? "" : "s");
      }
      std::printf("  chord solves: %llu, forced refactors: %llu\n",
                  static_cast<unsigned long long>(result.stats.chord_solves),
                  static_cast<unsigned long long>(result.stats.forced_refactors));
      std::printf("  backward solves: %zu, speculative: %zu (accepted %zu, direct %zu)\n",
                  result.sched.backward_solves, result.sched.speculative_solves,
                  result.sched.speculative_accepted, result.sched.speculative_direct);
      const auto replay = pipeline::ReplayOnWorkers(
          result.ledger, cli.scheme == pipeline::Scheme::kSerial ? 1 : cli.threads);
      std::printf("  solver CPU: %.4f s, modeled %d-core makespan: %.4f s (util %.0f%%)\n",
                  replay.busy_seconds, replay.workers, replay.makespan_seconds,
                  100 * replay.utilization);
    }

    if (cli.compare_serial && cli.scheme != pipeline::Scheme::kSerial) {
      pipeline::WavePipeOptions serial_options = options;
      serial_options.scheme = pipeline::Scheme::kSerial;
      const auto serial =
          pipeline::RunWavePipe(*elaborated.circuit, mna, elaborated.spec, serial_options);
      const double deviation =
          engine::Trace::MaxDeviationAll(serial.trace, result.trace);
      const double serial_makespan =
          pipeline::ReplayOnWorkers(serial.ledger, 1).makespan_seconds;
      const double scheme_makespan =
          pipeline::ReplayOnWorkers(result.ledger, cli.threads).makespan_seconds;
      std::printf("vs serial: max deviation %.3g V, modeled x%d speedup %.2f\n",
                  deviation, cli.threads, serial_makespan / scheme_makespan);
    }

    if (cli.chart && result.trace.probes().size() > 0) {
      util::AsciiChart chart(72, 14);
      for (std::size_t p = 0; p < result.trace.probes().size() && p < 4; ++p) {
        chart.AddSeries("v(" + result.trace.probes().names[p] + ")",
                        result.trace.Series(p));
      }
      std::printf("%s", chart.ToString().c_str());
    }

    if (!cli.csv_out.empty()) WriteCsv(result.trace, cli.csv_out);
  } catch (const Error& e) {
    std::fprintf(stderr, "wavespice: analysis failed: %s\n", e.what());
    return 3;
  }
  return 0;
}
