// wavespice: command-line SPICE front end for the WavePipe engine.
//
//   wavespice <deck.sp> [options]
//
//   --engine pipeline|serial|finegrained  engine to run        (default pipeline)
//   --scheme serial|bwp|fwp|combined   pipelining scheme       (default serial)
//   --threads N                        worker threads          (default 3)
//   --out FILE.csv                     write probed waveforms  (default stdout table off)
//   --chart                            ASCII chart of the probes
//   --stats                            print the run's counter registry
//   --stats-json FILE                  write run_stats.json (stable schema)
//   --trace-json FILE                  write Chrome trace_event JSON
//   --compare-serial                   also run serial, report deviation + speedup
//   --bypass                           enable the device latency bypass (off by default)
//   --bypass-vtol X                    latency tolerance scale (default 1.0)
//   --chord                            enable chord-Newton LU factor reuse
//   --partition N                      bordered-block-diagonal solve with N
//                                      pieces (0 = monolithic LU, default)
//   --reduce                           eliminate linear-only subnetworks before
//                                      analysis (exact Schur equivalents; probed
//                                      interior nodes are back-substituted).
//                                      Composes with --partition: reduce first,
//                                      then partition the smaller system.
//   --spec-policy fixed|adaptive       speculation policy       (default fixed)
//   --spec-depth-min N                 adaptive chain depth lower bound (default 0:
//                                      the controller may throttle speculation off)
//   --spec-depth-max N                 adaptive chain depth upper bound (default 6)
//   --checkpoint FILE                  durable run: periodic checkpoints to FILE.{a,b}
//   --checkpoint-steps N               checkpoint every N accepted steps (default 0: off)
//   --checkpoint-seconds T             checkpoint every T wall seconds (default 15)
//   --resume FILE                      restore a checkpoint and continue the run
//   --max-wall S                       abort (with final checkpoint) after S wall seconds
//   --max-steps N                      abort after N accepted steps this process
//   --max-newton-total N               abort after N Newton iterations this process
//   --watchdog                         stall watchdog over worker heartbeats
//   --no-breakers                      disable the feature circuit-breakers
//   --sweep                            batch mode: expand .param/.step/.mc into a
//                                      variant grid and run every variant across
//                                      --threads workers on shared symbolic
//                                      artifacts; --out becomes the aggregate CSV
//   --mc-seed N                        base seed for .mc device variation (default 1)
//   --sweep-waveforms                  also write per-variant CSVs (<out>.vK.csv)
//   --no-share                         batch mode: rebuild symbolic work per
//                                      variant (cold baseline, for benchmarking)
//
// Decks without .tran dispatch on the next analysis card: .dc (operating-
// point sweep) then .ac (small-signal frequency sweep).
//
// All three engines emit the SAME run_stats.json schema (see
// wavepipe/trace_export.hpp); --stats prints the same registry, so the text
// and JSON views can never drift apart.
//
// Exit codes: 0 ok, 1 usage, 2 parse/elaboration error, 3 analysis failure,
// 4 run incomplete (budget exhausted / watchdog / structured abort — partial
// results and any final checkpoint were still written), 5 checkpoint error
// (corrupt file or resume fingerprint mismatch).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "batch/ac.hpp"
#include "batch/dc_sweep.hpp"
#include "batch/runner.hpp"
#include "engine/resilience.hpp"
#include "netlist/elaborate.hpp"
#include "reduce/reduce.hpp"
#include "util/checkpoint.hpp"
#include "parallel/fine_grained.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"
#include "wavepipe/trace_export.hpp"
#include "wavepipe/virtual_pipeline.hpp"
#include "wavepipe/wavepipe.hpp"

using namespace wavepipe;

namespace {

enum class EngineKind { kPipeline, kSerial, kFineGrained };

struct CliOptions {
  std::string deck_path;
  EngineKind engine = EngineKind::kPipeline;
  pipeline::Scheme scheme = pipeline::Scheme::kSerial;
  int threads = 3;
  std::string csv_out;
  std::string stats_json;
  std::string trace_json;
  bool chart = false;
  bool stats = false;
  bool compare_serial = false;
  // Both accelerations are opt-in, matching the library default: a plain
  // wavespice run stays bit-exact with prior releases (replay wobble lands
  // within LTE tolerance, but "within tolerance" is not "identical").
  bool bypass = false;
  double bypass_vtol = 1.0;
  bool chord = false;
  int partition = 0;
  bool reduce = false;
  // Speculation policy: kFixed keeps the historical scheduler bit for bit.
  pipeline::SpecPolicyOptions spec_policy;
  // Durable-run machinery (engine/resilience.hpp).
  std::string checkpoint_path;
  std::string resume_path;
  std::uint64_t checkpoint_steps = 0;
  double checkpoint_seconds = 15.0;
  double max_wall = 0.0;
  std::uint64_t max_steps = 0;
  std::uint64_t max_newton_total = 0;
  bool watchdog = false;
  bool breakers = true;
  // Batch mode (src/batch).
  bool sweep = false;
  std::uint64_t mc_seed = 1;
  bool sweep_waveforms = false;
  bool share_artifacts = true;
};

int Usage() {
  std::fprintf(stderr,
               "usage: wavespice <deck.sp> [--engine pipeline|serial|finegrained] "
               "[--scheme serial|bwp|fwp|combined] "
               "[--threads N] [--out file.csv] [--chart] [--stats] "
               "[--stats-json file.json] [--trace-json file.json] "
               "[--compare-serial] [--bypass] [--bypass-vtol X] [--chord] "
               "[--partition N] [--reduce] "
               "[--spec-policy fixed|adaptive] [--spec-depth-min N] "
               "[--spec-depth-max N] "
               "[--checkpoint file.ckpt] [--checkpoint-steps N] "
               "[--checkpoint-seconds T] [--resume file.ckpt] "
               "[--max-wall S] [--max-steps N] [--max-newton-total N] "
               "[--watchdog] [--no-breakers] "
               "[--sweep] [--mc-seed N] [--sweep-waveforms] [--no-share]\n"
               "exit codes: 0 ok, 1 usage, 2 parse/elaboration error, "
               "3 analysis failure,\n"
               "            4 run incomplete (budget/watchdog/structured abort), "
               "5 checkpoint error\n");
  return 1;
}

bool ParseArgs(int argc, char** argv, CliOptions* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--engine") {
      const char* v = next();
      if (!v) return false;
      if (!std::strcmp(v, "pipeline")) out->engine = EngineKind::kPipeline;
      else if (!std::strcmp(v, "serial")) out->engine = EngineKind::kSerial;
      else if (!std::strcmp(v, "finegrained")) out->engine = EngineKind::kFineGrained;
      else return false;
    } else if (arg == "--scheme") {
      const char* v = next();
      if (!v) return false;
      if (!std::strcmp(v, "serial")) out->scheme = pipeline::Scheme::kSerial;
      else if (!std::strcmp(v, "bwp")) out->scheme = pipeline::Scheme::kBackward;
      else if (!std::strcmp(v, "fwp")) out->scheme = pipeline::Scheme::kForward;
      else if (!std::strcmp(v, "combined")) out->scheme = pipeline::Scheme::kCombined;
      else return false;
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      out->threads = std::atoi(v);
      if (out->threads < 1) return false;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return false;
      out->csv_out = v;
    } else if (arg == "--stats-json") {
      const char* v = next();
      if (!v) return false;
      out->stats_json = v;
    } else if (arg == "--trace-json") {
      const char* v = next();
      if (!v) return false;
      out->trace_json = v;
    } else if (arg == "--chart") {
      out->chart = true;
    } else if (arg == "--stats") {
      out->stats = true;
    } else if (arg == "--compare-serial") {
      out->compare_serial = true;
    } else if (arg == "--bypass") {
      out->bypass = true;
    } else if (arg == "--no-bypass") {  // kept for symmetry; off is the default
      out->bypass = false;
    } else if (arg == "--bypass-vtol") {
      const char* v = next();
      if (!v) return false;
      out->bypass_vtol = std::atof(v);
      if (!(out->bypass_vtol > 0.0)) return false;
    } else if (arg == "--chord") {
      out->chord = true;
    } else if (arg == "--partition") {
      const char* v = next();
      if (!v) return false;
      out->partition = std::atoi(v);
      if (out->partition < 0) return false;
    } else if (arg == "--reduce") {
      out->reduce = true;
    } else if (arg == "--spec-policy") {
      const char* v = next();
      if (!v) return false;
      if (!std::strcmp(v, "fixed")) {
        out->spec_policy.mode = pipeline::SpecPolicyMode::kFixed;
      } else if (!std::strcmp(v, "adaptive")) {
        out->spec_policy.mode = pipeline::SpecPolicyMode::kAdaptive;
      } else {
        return false;
      }
    } else if (arg == "--spec-depth-min") {
      const char* v = next();
      if (!v) return false;
      out->spec_policy.min_depth = std::atoi(v);
      if (out->spec_policy.min_depth < 0) return false;
    } else if (arg == "--spec-depth-max") {
      const char* v = next();
      if (!v) return false;
      out->spec_policy.max_depth = std::atoi(v);
      if (out->spec_policy.max_depth < 1) return false;
    } else if (arg == "--checkpoint") {
      const char* v = next();
      if (!v) return false;
      out->checkpoint_path = v;
    } else if (arg == "--checkpoint-steps") {
      const char* v = next();
      if (!v) return false;
      const long long n = std::atoll(v);
      if (n < 0) return false;
      out->checkpoint_steps = static_cast<std::uint64_t>(n);
    } else if (arg == "--checkpoint-seconds") {
      const char* v = next();
      if (!v) return false;
      out->checkpoint_seconds = std::atof(v);
      if (!(out->checkpoint_seconds >= 0.0)) return false;
    } else if (arg == "--resume") {
      const char* v = next();
      if (!v) return false;
      out->resume_path = v;
    } else if (arg == "--max-wall") {
      const char* v = next();
      if (!v) return false;
      out->max_wall = std::atof(v);
      if (!(out->max_wall >= 0.0)) return false;
    } else if (arg == "--max-steps") {
      const char* v = next();
      if (!v) return false;
      const long long n = std::atoll(v);
      if (n < 0) return false;
      out->max_steps = static_cast<std::uint64_t>(n);
    } else if (arg == "--max-newton-total") {
      const char* v = next();
      if (!v) return false;
      const long long n = std::atoll(v);
      if (n < 0) return false;
      out->max_newton_total = static_cast<std::uint64_t>(n);
    } else if (arg == "--watchdog") {
      out->watchdog = true;
    } else if (arg == "--no-breakers") {
      out->breakers = false;
    } else if (arg == "--sweep") {
      out->sweep = true;
    } else if (arg == "--mc-seed") {
      const char* v = next();
      if (!v) return false;
      const long long n = std::atoll(v);
      if (n < 0) return false;
      out->mc_seed = static_cast<std::uint64_t>(n);
    } else if (arg == "--sweep-waveforms") {
      out->sweep_waveforms = true;
    } else if (arg == "--no-share") {
      out->share_artifacts = false;
    } else if (!arg.empty() && arg[0] == '-') {
      return false;
    } else if (out->deck_path.empty()) {
      out->deck_path = arg;
    } else {
      return false;
    }
  }
  return !out->deck_path.empty();
}

/// `axis` names the first column; `wrap_v` wraps probe names as "v(name)"
/// (transient convention — dc/ac traces carry self-describing names).
void WriteTraceCsv(const engine::Trace& trace, const std::string& path,
                   const std::string& axis, bool wrap_v) {
  util::Table table([&] {
    std::vector<std::string> header{axis};
    for (const auto& name : trace.probes().names) {
      header.push_back(wrap_v ? "v(" + name + ")" : name);
    }
    return header;
  }());
  for (std::size_t i = 0; i < trace.num_samples(); ++i) {
    std::vector<std::string> row{util::FormatDouble(trace.time(i), 9)};
    for (std::size_t p = 0; p < trace.probes().size(); ++p) {
      row.push_back(util::FormatDouble(trace.value(i, p), 9));
    }
    table.AddRow(std::move(row));
  }
  table.WriteCsv(path);
  std::printf("wrote %zu samples x %zu probes to %s\n", trace.num_samples(),
              trace.probes().size(), path.c_str());
}

void WriteCsv(const engine::Trace& trace, const std::string& path) {
  WriteTraceCsv(trace, path, "time", /*wrap_v=*/true);
}

/// Prints the registry — the SAME one run_stats.json serializes, so the text
/// and JSON stats views share one source and cannot drift.
void PrintCounters(const util::telemetry::CounterRegistry& registry) {
  for (const auto& counter : registry.counters()) {
    if (counter.integral) {
      std::printf("  %-42s %lld\n", counter.name.c_str(),
                  static_cast<long long>(counter.value));
    } else {
      std::printf("  %-42s %.6g\n", counter.name.c_str(), counter.value);
    }
  }
}

/// Hex form of a waveform hash — the aggregate CSV's bit-identity column.
std::string HashHex(std::uint64_t hash) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(hash));
  return buf;
}

/// Batch mode (--sweep): expand the deck's grid, run every variant on the
/// pool with shared symbolic artifacts, and write the aggregate CSV whose
/// bytes are the determinism contract CI diffs across pool sizes.
int RunBatchMode(const CliOptions& cli) {
  netlist::ParsedNetlist parsed;
  batch::BatchOptions options;
  options.threads = cli.threads;
  options.mc_seed = cli.mc_seed;
  options.share_artifacts = cli.share_artifacts;
  try {
    parsed = netlist::ParseNetlistFile(cli.deck_path);
    // The prototype's .options seed the per-variant SimOptions; CLI
    // acceleration flags overlay them, exactly like the single-run path.
    options.sim = netlist::Elaborate(batch::ApplyParamDefaults(parsed)).sim_options;
  } catch (const Error& e) {
    std::fprintf(stderr, "wavespice: %s\n", e.what());
    return 2;
  }
  options.sim.device_bypass = cli.bypass;
  options.sim.bypass_vtol = cli.bypass_vtol;
  options.sim.chord_newton = cli.chord;
  options.sim.partition_pieces = cli.partition;

  try {
    const batch::BatchResult result = batch::RunBatch(parsed, options);
    const batch::BatchStats& stats = result.stats;
    std::printf("batch: %llu variants (%llu step axes x %llu mc samples), "
                "%llu ok, %llu failed, %d threads, wall %.3f s\n",
                static_cast<unsigned long long>(stats.variants_total),
                static_cast<unsigned long long>(stats.step_axes),
                static_cast<unsigned long long>(
                    stats.mc_samples > 0 ? stats.mc_samples : 1),
                static_cast<unsigned long long>(stats.variants_ok),
                static_cast<unsigned long long>(stats.variants_failed),
                cli.threads, stats.wall_seconds);
    if (result.artifacts.built) {
      std::printf("shared artifacts: dim %d, ordering %llu hits / %llu misses, "
                  "build %.3f s\n",
                  result.artifacts.dimension,
                  static_cast<unsigned long long>(stats.ordering_hits),
                  static_cast<unsigned long long>(stats.ordering_misses),
                  stats.artifacts_build_seconds);
    }
    for (const auto& v : result.variants) {
      if (!v.ok) {
        std::fprintf(stderr, "wavespice: variant %d failed: %s\n", v.index,
                     v.error.c_str());
      }
    }

    if (!cli.csv_out.empty()) {
      util::Table table([&] {
        std::vector<std::string> header{"variant"};
        for (const auto& axis : result.plan.axis_names) header.push_back(axis);
        header.insert(header.end(), {"mc", "seed", "status", "analysis", "steps",
                                     "newton", "points", "waveform_hash",
                                     "error"});
        return header;
      }());
      for (const auto& v : result.variants) {
        std::vector<std::string> row{std::to_string(v.index)};
        for (const auto& [name, value] : v.spec.step_values) {
          (void)name;
          row.push_back(util::FormatDouble(value, 9));
        }
        row.push_back(std::to_string(v.spec.mc_index));
        row.push_back(std::to_string(v.spec.seed));
        row.push_back(v.ok ? "ok" : "failed");
        row.push_back(v.analysis.empty() ? "-" : v.analysis);
        row.push_back(std::to_string(v.steps_accepted));
        row.push_back(std::to_string(v.newton_iterations));
        row.push_back(std::to_string(v.points));
        row.push_back(v.ok ? HashHex(v.waveform_hash) : "-");
        row.push_back(v.error);
        table.AddRow(std::move(row));
      }
      table.WriteCsv(cli.csv_out);
      std::printf("wrote %zu variant rows to %s\n", result.variants.size(),
                  cli.csv_out.c_str());
      if (cli.sweep_waveforms) {
        std::string stem = cli.csv_out;
        if (stem.size() > 4 && stem.substr(stem.size() - 4) == ".csv") {
          stem.resize(stem.size() - 4);
        }
        for (const auto& v : result.variants) {
          if (!v.ok) continue;
          const std::string axis = v.analysis == "tran"  ? "time"
                                   : v.analysis == "dc"  ? "sweep"
                                                         : "freq";
          WriteTraceCsv(v.trace, stem + ".v" + std::to_string(v.index) + ".csv",
                        axis, v.analysis == "tran");
        }
      }
    }

    pipeline::RunCounterInputs inputs;
    inputs.batch = stats;
    const util::telemetry::CounterRegistry registry =
        pipeline::BuildRunCounters(inputs);
    if (cli.stats) PrintCounters(registry);
    if (!cli.stats_json.empty()) {
      pipeline::RunInfo info;
      info.engine = "batch";
      info.deck = cli.deck_path;
      info.threads = cli.threads;
      info.dcop_strategy = "-";
      info.completed = stats.variants_failed == 0;
      if (!info.completed) info.abort_reason = "variant failures";
      pipeline::WriteTextFile(cli.stats_json, pipeline::RunStatsJson(info, registry));
      std::printf("wrote run stats (%zu counters) to %s\n", registry.size(),
                  cli.stats_json.c_str());
    }
    if (stats.variants_failed > 0) return 4;
  } catch (const Error& e) {
    std::fprintf(stderr, "wavespice: analysis failed: %s\n", e.what());
    return 3;
  }
  return 0;
}

/// Single-run path for .dc / .ac decks (no .tran, no --sweep).
int RunSingleSweepAnalysis(const CliOptions& cli,
                           netlist::ElaboratedCircuit& elaborated) {
  try {
    const engine::MnaStructure mna(*elaborated.circuit);
    engine::SimOptions sim = elaborated.sim_options;
    sim.device_bypass = cli.bypass;
    sim.bypass_vtol = cli.bypass_vtol;
    sim.chord_newton = cli.chord;
    sim.partition_pieces = cli.partition;

    engine::Trace trace;
    std::string engine_name, axis;
    if (elaborated.dc.present) {
      const auto result = batch::RunDcSweep(*elaborated.circuit, mna, elaborated.dc,
                                            elaborated.probes, sim);
      std::printf("dc sweep of %s: %llu points, %llu Newton iterations\n",
                  elaborated.dc.source.c_str(),
                  static_cast<unsigned long long>(result.points),
                  static_cast<unsigned long long>(result.newton_iterations));
      trace = result.trace;
      engine_name = "dc-sweep";
      axis = "sweep";
    } else {
      const auto result = batch::RunAcAnalysis(*elaborated.circuit, mna, elaborated.ac,
                                               elaborated.probes, sim);
      std::printf("ac: %llu frequencies, dcop %llu Newton iterations%s\n",
                  static_cast<unsigned long long>(result.points),
                  static_cast<unsigned long long>(result.dcop_iterations),
                  result.ordering_injected ? ", 2n ordering inherited" : "");
      trace = result.trace;
      engine_name = "ac";
      axis = "freq";
    }

    pipeline::RunCounterInputs inputs;
    const util::telemetry::CounterRegistry registry =
        pipeline::BuildRunCounters(inputs);
    if (cli.stats) PrintCounters(registry);
    if (!cli.stats_json.empty()) {
      pipeline::RunInfo info;
      info.engine = engine_name;
      info.deck = elaborated.title.empty() ? cli.deck_path : elaborated.title;
      info.threads = 1;
      info.dcop_strategy = "-";
      pipeline::WriteTextFile(cli.stats_json, pipeline::RunStatsJson(info, registry));
      std::printf("wrote run stats (%zu counters) to %s\n", registry.size(),
                  cli.stats_json.c_str());
    }
    if (cli.chart && trace.probes().size() > 0) {
      util::AsciiChart chart(72, 14);
      for (std::size_t p = 0; p < trace.probes().size() && p < 4; ++p) {
        chart.AddSeries(trace.probes().names[p], trace.Series(p));
      }
      std::printf("%s", chart.ToString().c_str());
    }
    if (!cli.csv_out.empty()) WriteTraceCsv(trace, cli.csv_out, axis, false);
  } catch (const Error& e) {
    std::fprintf(stderr, "wavespice: analysis failed: %s\n", e.what());
    return 3;
  }
  return 0;
}

/// What every engine variant hands back to the shared output stages.
struct RunProducts {
  engine::Trace trace;
  pipeline::RunInfo info;
  pipeline::RunCounterInputs counters;
  // Pipeline only; empty/zero for the other engines (schema unaffected:
  // BuildRunCounters exports the groups with defaults).
  pipeline::Ledger ledger;
  bool has_ledger = false;
};

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) return Usage();

  if (cli.sweep) return RunBatchMode(cli);

  netlist::ElaboratedCircuit elaborated;
  try {
    elaborated = netlist::LoadDeckFile(cli.deck_path);
  } catch (const Error& e) {
    std::fprintf(stderr, "wavespice: %s\n", e.what());
    return 2;
  }
  if (!elaborated.has_tran) {
    if (elaborated.dc.present || elaborated.ac.present) {
      return RunSingleSweepAnalysis(cli, elaborated);
    }
    std::fprintf(stderr, "wavespice: deck has no analysis card (.tran/.dc/.ac)\n");
    return 2;
  }
  std::printf("%s: %d unknowns, %zu devices, tran %g..%g s\n",
              elaborated.title.c_str(), elaborated.circuit->num_unknowns(),
              elaborated.circuit->num_devices(), elaborated.spec.tstart,
              elaborated.spec.tstop);

  // The resume checkpoint outlives the run (SimOptions holds a pointer).
  engine::TransientCheckpoint resume_ck;

  // Reduction stats survive past the pass so every engine branch exports the
  // same reduce.* counter group (zeros when --reduce is off).
  reduce::ReductionStats reduction_stats;

  try {
    if (cli.reduce) {
      // Nodes whose values are imposed by unknown index (.ic) must survive
      // elimination; probed nodes need not — RemapSpec reroutes them to the
      // subnets' back-substituted state slots.
      std::vector<int> keep;
      for (const auto& ic : elaborated.spec.initial_conditions) keep.push_back(ic.first);
      for (const auto& ic : elaborated.initial_conditions) keep.push_back(ic.first);
      reduce::ReductionResult reduction = reduce::Reduce(std::move(elaborated.circuit), keep);
      reduction.stats.interior_expansions +=
          reduce::RemapSpec(reduction, elaborated.spec);
      for (auto& ic : elaborated.initial_conditions) {
        if (ic.first >= 0) ic.first = reduction.unknown_map[static_cast<std::size_t>(ic.first)];
      }
      elaborated.circuit = std::move(reduction.circuit);
      reduction_stats = reduction.stats;
      if (reduction.reduced) {
        std::printf("reduce: %llu subnets, %llu nodes eliminated, %llu devices "
                    "absorbed, %d unknowns remain\n",
                    static_cast<unsigned long long>(reduction_stats.subnets),
                    static_cast<unsigned long long>(reduction_stats.nodes_eliminated),
                    static_cast<unsigned long long>(reduction_stats.devices_absorbed),
                    elaborated.circuit->num_unknowns());
      }
    }

    engine::MnaStructure mna(*elaborated.circuit);
    engine::SimOptions sim = elaborated.sim_options;
    sim.device_bypass = cli.bypass;
    sim.bypass_vtol = cli.bypass_vtol;
    sim.chord_newton = cli.chord;
    sim.partition_pieces = cli.partition;
    sim.resilience.checkpoint_path = cli.checkpoint_path;
    sim.resilience.checkpoint_every_steps = cli.checkpoint_steps;
    sim.resilience.checkpoint_every_seconds = cli.checkpoint_seconds;
    sim.resilience.max_wall_seconds = cli.max_wall;
    sim.resilience.max_steps = cli.max_steps;
    sim.resilience.max_newton_total = cli.max_newton_total;
    sim.resilience.watchdog = cli.watchdog;
    sim.resilience.breakers = cli.breakers;
    if (!cli.resume_path.empty()) {
      resume_ck = engine::LoadCheckpoint(cli.resume_path);
      sim.resilience.resume = &resume_ck;
      std::printf("resuming from %s (engine %s, %zu accepted steps, t = %g s)\n",
                  cli.resume_path.c_str(), resume_ck.engine.c_str(),
                  resume_ck.stats.steps_accepted,
                  resume_ck.trace_times.empty() ? 0.0 : resume_ck.trace_times.back());
    }

    const bool want_trace = !cli.trace_json.empty();
    if (want_trace) util::telemetry::StartCapture();

    RunProducts run;
    run.info.deck = elaborated.title.empty() ? cli.deck_path : elaborated.title;
    run.info.threads = cli.threads;

    if (cli.engine == EngineKind::kSerial) {
      const auto result =
          engine::RunTransientSerial(*elaborated.circuit, mna, elaborated.spec, sim);
      std::printf("engine serial: %zu steps, %llu Newton iterations, dcop via %s, "
                  "wall %.3f s\n",
                  result.stats.steps_accepted,
                  static_cast<unsigned long long>(result.stats.newton_iterations),
                  result.stats.dcop_strategy.c_str(), result.stats.wall_seconds);
      run.trace = result.trace;
      run.info.engine = "serial";
      run.info.threads = 1;
      run.info.dcop_strategy = result.stats.dcop_strategy;
      run.info.completed = result.completed;
      run.info.abort_reason = result.abort_reason;
      run.info.last_good_time = result.last_good_time;
      run.counters.stats = result.stats;
      run.counters.resilience = result.resilience;
    } else if (cli.engine == EngineKind::kFineGrained) {
      parallel::FineGrainedOptions options;
      options.threads = cli.threads;
      options.sim = sim;
      const auto result =
          parallel::RunTransientFineGrained(*elaborated.circuit, mna, elaborated.spec,
                                            options);
      std::printf("engine finegrained (%d threads, %s assembly): %zu steps, "
                  "%llu Newton iterations, dcop via %s, wall %.3f s\n",
                  cli.threads, result.assembly.strategy, result.stats.steps_accepted,
                  static_cast<unsigned long long>(result.stats.newton_iterations),
                  result.stats.dcop_strategy.c_str(), result.stats.wall_seconds);
      run.trace = result.trace;
      run.info.engine = "fine-grained";
      run.info.dcop_strategy = result.stats.dcop_strategy;
      run.info.assembly_strategy = result.assembly.strategy;
      run.info.completed = result.completed;
      run.info.abort_reason = result.abort_reason;
      run.info.last_good_time =
          result.trace.num_samples() > 0
              ? result.trace.time(result.trace.num_samples() - 1)
              : elaborated.spec.tstart;
      run.counters.stats = result.stats;
      run.counters.assembly = result.assembly;
      run.counters.phases = result.phases;
      run.counters.resilience = result.resilience;
    } else {
      pipeline::WavePipeOptions options;
      options.scheme = cli.scheme;
      options.threads = cli.threads;
      options.spec_policy = cli.spec_policy;
      options.sim = sim;
      const auto result =
          pipeline::RunWavePipe(*elaborated.circuit, mna, elaborated.spec, options);

      std::printf("scheme %s: %zu steps, %zu rounds, %llu Newton iterations, "
                  "dcop via %s, wall %.3f s\n",
                  pipeline::SchemeName(cli.scheme), result.stats.steps_accepted,
                  result.sched.rounds,
                  static_cast<unsigned long long>(result.stats.newton_iterations),
                  result.stats.dcop_strategy.c_str(), result.stats.wall_seconds);

      run.trace = result.trace;
      run.info.engine = "wavepipe";
      run.info.scheme = pipeline::SchemeName(cli.scheme);
      run.info.dcop_strategy = result.stats.dcop_strategy;
      run.info.assembly_strategy = result.assembly.strategy;
      run.info.completed = result.completed;
      run.info.abort_reason = result.abort_reason;
      run.info.last_good_time = result.last_good_time;
      run.counters.stats = result.stats;
      run.counters.assembly = result.assembly;
      run.counters.sched = result.sched;
      run.counters.spec = result.spec;
      run.counters.resilience = result.resilience;
      run.ledger = result.ledger;
      run.has_ledger = true;

      if (cli.compare_serial && cli.scheme != pipeline::Scheme::kSerial) {
        pipeline::WavePipeOptions serial_options = options;
        serial_options.scheme = pipeline::Scheme::kSerial;
        const auto serial = pipeline::RunWavePipe(*elaborated.circuit, mna,
                                                  elaborated.spec, serial_options);
        const double deviation =
            engine::Trace::MaxDeviationAll(serial.trace, result.trace);
        const double serial_makespan =
            pipeline::ReplayOnWorkers(serial.ledger, 1).makespan_seconds;
        const double scheme_makespan =
            pipeline::ReplayOnWorkers(result.ledger, cli.threads).makespan_seconds;
        std::printf("vs serial: max deviation %.3g V, modeled x%d speedup %.2f\n",
                    deviation, cli.threads, serial_makespan / scheme_makespan);
      }
    }

    const int replay_workers =
        (cli.engine == EngineKind::kPipeline && cli.scheme != pipeline::Scheme::kSerial)
            ? cli.threads
            : 1;
    if (run.has_ledger) {
      run.counters.ledger = &run.ledger;
      run.counters.replay = pipeline::ReplayOnWorkers(run.ledger, replay_workers);
    }
    run.counters.reduction = reduction_stats;
    const util::telemetry::CounterRegistry registry =
        pipeline::BuildRunCounters(run.counters);

    if (cli.stats) PrintCounters(registry);

    if (!cli.stats_json.empty()) {
      pipeline::WriteTextFile(cli.stats_json, pipeline::RunStatsJson(run.info, registry));
      std::printf("wrote run stats (%zu counters) to %s\n", registry.size(),
                  cli.stats_json.c_str());
    }

    if (want_trace) {
      pipeline::ChromeTraceInputs trace_in;
      trace_in.capture = util::telemetry::StopCapture();
      trace_in.ledger = run.has_ledger ? &run.ledger : nullptr;
      trace_in.replay_workers = run.has_ledger ? replay_workers : 0;
      pipeline::WriteTextFile(cli.trace_json, pipeline::ChromeTraceJson(trace_in));
      std::printf("wrote %zu trace events to %s (open in chrome://tracing or "
                  "https://ui.perfetto.dev)\n",
                  trace_in.capture.events.size() +
                      (run.has_ledger ? run.ledger.size() : 0),
                  cli.trace_json.c_str());
    }

    if (cli.chart && run.trace.probes().size() > 0) {
      util::AsciiChart chart(72, 14);
      for (std::size_t p = 0; p < run.trace.probes().size() && p < 4; ++p) {
        chart.AddSeries("v(" + run.trace.probes().names[p] + ")", run.trace.Series(p));
      }
      std::printf("%s", chart.ToString().c_str());
    }

    if (!cli.csv_out.empty()) WriteCsv(run.trace, cli.csv_out);

    if (!run.info.completed) {
      std::fprintf(stderr, "wavespice: run incomplete at t = %g s: %s\n",
                   run.info.last_good_time, run.info.abort_reason.c_str());
      return 4;
    }
  } catch (const util::CheckpointError& e) {
    std::fprintf(stderr, "wavespice: checkpoint error: %s\n", e.what());
    return 5;
  } catch (const Error& e) {
    std::fprintf(stderr, "wavespice: analysis failed: %s\n", e.what());
    return 3;
  }
  return 0;
}
