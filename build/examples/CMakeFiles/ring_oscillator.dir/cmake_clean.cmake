file(REMOVE_RECURSE
  "CMakeFiles/ring_oscillator.dir/ring_oscillator.cpp.o"
  "CMakeFiles/ring_oscillator.dir/ring_oscillator.cpp.o.d"
  "ring_oscillator"
  "ring_oscillator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_oscillator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
