# Empty dependencies file for ring_oscillator.
# This may be replaced when dependencies are built.
