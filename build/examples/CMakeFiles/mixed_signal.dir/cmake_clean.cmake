file(REMOVE_RECURSE
  "CMakeFiles/mixed_signal.dir/mixed_signal.cpp.o"
  "CMakeFiles/mixed_signal.dir/mixed_signal.cpp.o.d"
  "mixed_signal"
  "mixed_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
