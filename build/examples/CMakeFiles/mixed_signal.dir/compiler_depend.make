# Empty compiler generated dependencies file for mixed_signal.
# This may be replaced when dependencies are built.
