file(REMOVE_RECURSE
  "CMakeFiles/wavespice.dir/wavespice.cpp.o"
  "CMakeFiles/wavespice.dir/wavespice.cpp.o.d"
  "wavespice"
  "wavespice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavespice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
