# Empty compiler generated dependencies file for wavespice.
# This may be replaced when dependencies are built.
