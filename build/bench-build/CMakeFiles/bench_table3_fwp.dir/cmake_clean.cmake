file(REMOVE_RECURSE
  "../bench/bench_table3_fwp"
  "../bench/bench_table3_fwp.pdb"
  "CMakeFiles/bench_table3_fwp.dir/bench_table3_fwp.cpp.o"
  "CMakeFiles/bench_table3_fwp.dir/bench_table3_fwp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_fwp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
