# Empty dependencies file for bench_abl_growth.
# This may be replaced when dependencies are built.
