file(REMOVE_RECURSE
  "../bench/bench_abl_growth"
  "../bench/bench_abl_growth.pdb"
  "CMakeFiles/bench_abl_growth.dir/bench_abl_growth.cpp.o"
  "CMakeFiles/bench_abl_growth.dir/bench_abl_growth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
