# Empty compiler generated dependencies file for bench_micro_sparse.
# This may be replaced when dependencies are built.
