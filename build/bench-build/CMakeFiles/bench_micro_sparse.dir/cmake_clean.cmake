file(REMOVE_RECURSE
  "../bench/bench_micro_sparse"
  "../bench/bench_micro_sparse.pdb"
  "CMakeFiles/bench_micro_sparse.dir/bench_micro_sparse.cpp.o"
  "CMakeFiles/bench_micro_sparse.dir/bench_micro_sparse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
