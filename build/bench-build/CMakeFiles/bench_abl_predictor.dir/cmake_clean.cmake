file(REMOVE_RECURSE
  "../bench/bench_abl_predictor"
  "../bench/bench_abl_predictor.pdb"
  "CMakeFiles/bench_abl_predictor.dir/bench_abl_predictor.cpp.o"
  "CMakeFiles/bench_abl_predictor.dir/bench_abl_predictor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
