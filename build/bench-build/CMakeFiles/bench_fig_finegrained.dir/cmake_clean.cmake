file(REMOVE_RECURSE
  "../bench/bench_fig_finegrained"
  "../bench/bench_fig_finegrained.pdb"
  "CMakeFiles/bench_fig_finegrained.dir/bench_fig_finegrained.cpp.o"
  "CMakeFiles/bench_fig_finegrained.dir/bench_fig_finegrained.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_finegrained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
