file(REMOVE_RECURSE
  "../bench/bench_table4_combined"
  "../bench/bench_table4_combined.pdb"
  "CMakeFiles/bench_table4_combined.dir/bench_table4_combined.cpp.o"
  "CMakeFiles/bench_table4_combined.dir/bench_table4_combined.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
