# Empty dependencies file for bench_table4_combined.
# This may be replaced when dependencies are built.
