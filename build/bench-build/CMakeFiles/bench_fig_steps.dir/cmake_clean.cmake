file(REMOVE_RECURSE
  "../bench/bench_fig_steps"
  "../bench/bench_fig_steps.pdb"
  "CMakeFiles/bench_fig_steps.dir/bench_fig_steps.cpp.o"
  "CMakeFiles/bench_fig_steps.dir/bench_fig_steps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
