# Empty dependencies file for bench_fig_steps.
# This may be replaced when dependencies are built.
