file(REMOVE_RECURSE
  "../bench/bench_table2_bwp"
  "../bench/bench_table2_bwp.pdb"
  "CMakeFiles/bench_table2_bwp.dir/bench_table2_bwp.cpp.o"
  "CMakeFiles/bench_table2_bwp.dir/bench_table2_bwp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_bwp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
