# Empty dependencies file for bench_table2_bwp.
# This may be replaced when dependencies are built.
