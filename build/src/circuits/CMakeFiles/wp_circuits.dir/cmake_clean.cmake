file(REMOVE_RECURSE
  "CMakeFiles/wp_circuits.dir/generators.cpp.o"
  "CMakeFiles/wp_circuits.dir/generators.cpp.o.d"
  "libwp_circuits.a"
  "libwp_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
