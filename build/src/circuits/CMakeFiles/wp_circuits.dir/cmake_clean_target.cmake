file(REMOVE_RECURSE
  "libwp_circuits.a"
)
