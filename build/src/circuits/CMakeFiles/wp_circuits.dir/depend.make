# Empty dependencies file for wp_circuits.
# This may be replaced when dependencies are built.
