# Empty compiler generated dependencies file for wp_netlist.
# This may be replaced when dependencies are built.
