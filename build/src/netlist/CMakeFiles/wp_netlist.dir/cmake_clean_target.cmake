file(REMOVE_RECURSE
  "libwp_netlist.a"
)
