file(REMOVE_RECURSE
  "CMakeFiles/wp_netlist.dir/elaborate.cpp.o"
  "CMakeFiles/wp_netlist.dir/elaborate.cpp.o.d"
  "CMakeFiles/wp_netlist.dir/lexer.cpp.o"
  "CMakeFiles/wp_netlist.dir/lexer.cpp.o.d"
  "CMakeFiles/wp_netlist.dir/parser.cpp.o"
  "CMakeFiles/wp_netlist.dir/parser.cpp.o.d"
  "libwp_netlist.a"
  "libwp_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
