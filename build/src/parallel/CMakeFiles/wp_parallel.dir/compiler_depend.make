# Empty compiler generated dependencies file for wp_parallel.
# This may be replaced when dependencies are built.
