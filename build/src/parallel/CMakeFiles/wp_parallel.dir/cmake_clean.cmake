file(REMOVE_RECURSE
  "CMakeFiles/wp_parallel.dir/fine_grained.cpp.o"
  "CMakeFiles/wp_parallel.dir/fine_grained.cpp.o.d"
  "libwp_parallel.a"
  "libwp_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
