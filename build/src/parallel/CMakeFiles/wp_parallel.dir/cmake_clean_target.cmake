file(REMOVE_RECURSE
  "libwp_parallel.a"
)
