file(REMOVE_RECURSE
  "libwp_util.a"
)
