# Empty compiler generated dependencies file for wp_util.
# This may be replaced when dependencies are built.
