file(REMOVE_RECURSE
  "CMakeFiles/wp_util.dir/log.cpp.o"
  "CMakeFiles/wp_util.dir/log.cpp.o.d"
  "CMakeFiles/wp_util.dir/strings.cpp.o"
  "CMakeFiles/wp_util.dir/strings.cpp.o.d"
  "CMakeFiles/wp_util.dir/table.cpp.o"
  "CMakeFiles/wp_util.dir/table.cpp.o.d"
  "CMakeFiles/wp_util.dir/thread_pool.cpp.o"
  "CMakeFiles/wp_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/wp_util.dir/timer.cpp.o"
  "CMakeFiles/wp_util.dir/timer.cpp.o.d"
  "libwp_util.a"
  "libwp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
