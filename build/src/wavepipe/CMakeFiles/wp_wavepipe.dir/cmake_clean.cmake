file(REMOVE_RECURSE
  "CMakeFiles/wp_wavepipe.dir/bwp.cpp.o"
  "CMakeFiles/wp_wavepipe.dir/bwp.cpp.o.d"
  "CMakeFiles/wp_wavepipe.dir/combined.cpp.o"
  "CMakeFiles/wp_wavepipe.dir/combined.cpp.o.d"
  "CMakeFiles/wp_wavepipe.dir/driver.cpp.o"
  "CMakeFiles/wp_wavepipe.dir/driver.cpp.o.d"
  "CMakeFiles/wp_wavepipe.dir/fwp.cpp.o"
  "CMakeFiles/wp_wavepipe.dir/fwp.cpp.o.d"
  "CMakeFiles/wp_wavepipe.dir/ledger.cpp.o"
  "CMakeFiles/wp_wavepipe.dir/ledger.cpp.o.d"
  "CMakeFiles/wp_wavepipe.dir/serial.cpp.o"
  "CMakeFiles/wp_wavepipe.dir/serial.cpp.o.d"
  "CMakeFiles/wp_wavepipe.dir/virtual_pipeline.cpp.o"
  "CMakeFiles/wp_wavepipe.dir/virtual_pipeline.cpp.o.d"
  "libwp_wavepipe.a"
  "libwp_wavepipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_wavepipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
