# Empty dependencies file for wp_wavepipe.
# This may be replaced when dependencies are built.
