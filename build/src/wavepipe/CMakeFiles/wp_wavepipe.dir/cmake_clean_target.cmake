file(REMOVE_RECURSE
  "libwp_wavepipe.a"
)
