
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wavepipe/bwp.cpp" "src/wavepipe/CMakeFiles/wp_wavepipe.dir/bwp.cpp.o" "gcc" "src/wavepipe/CMakeFiles/wp_wavepipe.dir/bwp.cpp.o.d"
  "/root/repo/src/wavepipe/combined.cpp" "src/wavepipe/CMakeFiles/wp_wavepipe.dir/combined.cpp.o" "gcc" "src/wavepipe/CMakeFiles/wp_wavepipe.dir/combined.cpp.o.d"
  "/root/repo/src/wavepipe/driver.cpp" "src/wavepipe/CMakeFiles/wp_wavepipe.dir/driver.cpp.o" "gcc" "src/wavepipe/CMakeFiles/wp_wavepipe.dir/driver.cpp.o.d"
  "/root/repo/src/wavepipe/fwp.cpp" "src/wavepipe/CMakeFiles/wp_wavepipe.dir/fwp.cpp.o" "gcc" "src/wavepipe/CMakeFiles/wp_wavepipe.dir/fwp.cpp.o.d"
  "/root/repo/src/wavepipe/ledger.cpp" "src/wavepipe/CMakeFiles/wp_wavepipe.dir/ledger.cpp.o" "gcc" "src/wavepipe/CMakeFiles/wp_wavepipe.dir/ledger.cpp.o.d"
  "/root/repo/src/wavepipe/serial.cpp" "src/wavepipe/CMakeFiles/wp_wavepipe.dir/serial.cpp.o" "gcc" "src/wavepipe/CMakeFiles/wp_wavepipe.dir/serial.cpp.o.d"
  "/root/repo/src/wavepipe/virtual_pipeline.cpp" "src/wavepipe/CMakeFiles/wp_wavepipe.dir/virtual_pipeline.cpp.o" "gcc" "src/wavepipe/CMakeFiles/wp_wavepipe.dir/virtual_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/wp_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/wp_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/wp_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
