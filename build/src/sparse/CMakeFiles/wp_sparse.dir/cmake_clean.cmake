file(REMOVE_RECURSE
  "CMakeFiles/wp_sparse.dir/csc.cpp.o"
  "CMakeFiles/wp_sparse.dir/csc.cpp.o.d"
  "CMakeFiles/wp_sparse.dir/dense.cpp.o"
  "CMakeFiles/wp_sparse.dir/dense.cpp.o.d"
  "CMakeFiles/wp_sparse.dir/lu.cpp.o"
  "CMakeFiles/wp_sparse.dir/lu.cpp.o.d"
  "CMakeFiles/wp_sparse.dir/ordering.cpp.o"
  "CMakeFiles/wp_sparse.dir/ordering.cpp.o.d"
  "CMakeFiles/wp_sparse.dir/triplet.cpp.o"
  "CMakeFiles/wp_sparse.dir/triplet.cpp.o.d"
  "CMakeFiles/wp_sparse.dir/vector_ops.cpp.o"
  "CMakeFiles/wp_sparse.dir/vector_ops.cpp.o.d"
  "libwp_sparse.a"
  "libwp_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
