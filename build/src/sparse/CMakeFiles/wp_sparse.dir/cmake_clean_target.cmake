file(REMOVE_RECURSE
  "libwp_sparse.a"
)
