# Empty dependencies file for wp_sparse.
# This may be replaced when dependencies are built.
