file(REMOVE_RECURSE
  "libwp_engine.a"
)
