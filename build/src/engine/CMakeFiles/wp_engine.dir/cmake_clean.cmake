file(REMOVE_RECURSE
  "CMakeFiles/wp_engine.dir/circuit.cpp.o"
  "CMakeFiles/wp_engine.dir/circuit.cpp.o.d"
  "CMakeFiles/wp_engine.dir/dcop.cpp.o"
  "CMakeFiles/wp_engine.dir/dcop.cpp.o.d"
  "CMakeFiles/wp_engine.dir/integrator.cpp.o"
  "CMakeFiles/wp_engine.dir/integrator.cpp.o.d"
  "CMakeFiles/wp_engine.dir/mna.cpp.o"
  "CMakeFiles/wp_engine.dir/mna.cpp.o.d"
  "CMakeFiles/wp_engine.dir/newton.cpp.o"
  "CMakeFiles/wp_engine.dir/newton.cpp.o.d"
  "CMakeFiles/wp_engine.dir/step_control.cpp.o"
  "CMakeFiles/wp_engine.dir/step_control.cpp.o.d"
  "CMakeFiles/wp_engine.dir/trace.cpp.o"
  "CMakeFiles/wp_engine.dir/trace.cpp.o.d"
  "CMakeFiles/wp_engine.dir/transient.cpp.o"
  "CMakeFiles/wp_engine.dir/transient.cpp.o.d"
  "libwp_engine.a"
  "libwp_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
