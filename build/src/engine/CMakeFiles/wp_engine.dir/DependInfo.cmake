
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/circuit.cpp" "src/engine/CMakeFiles/wp_engine.dir/circuit.cpp.o" "gcc" "src/engine/CMakeFiles/wp_engine.dir/circuit.cpp.o.d"
  "/root/repo/src/engine/dcop.cpp" "src/engine/CMakeFiles/wp_engine.dir/dcop.cpp.o" "gcc" "src/engine/CMakeFiles/wp_engine.dir/dcop.cpp.o.d"
  "/root/repo/src/engine/integrator.cpp" "src/engine/CMakeFiles/wp_engine.dir/integrator.cpp.o" "gcc" "src/engine/CMakeFiles/wp_engine.dir/integrator.cpp.o.d"
  "/root/repo/src/engine/mna.cpp" "src/engine/CMakeFiles/wp_engine.dir/mna.cpp.o" "gcc" "src/engine/CMakeFiles/wp_engine.dir/mna.cpp.o.d"
  "/root/repo/src/engine/newton.cpp" "src/engine/CMakeFiles/wp_engine.dir/newton.cpp.o" "gcc" "src/engine/CMakeFiles/wp_engine.dir/newton.cpp.o.d"
  "/root/repo/src/engine/step_control.cpp" "src/engine/CMakeFiles/wp_engine.dir/step_control.cpp.o" "gcc" "src/engine/CMakeFiles/wp_engine.dir/step_control.cpp.o.d"
  "/root/repo/src/engine/trace.cpp" "src/engine/CMakeFiles/wp_engine.dir/trace.cpp.o" "gcc" "src/engine/CMakeFiles/wp_engine.dir/trace.cpp.o.d"
  "/root/repo/src/engine/transient.cpp" "src/engine/CMakeFiles/wp_engine.dir/transient.cpp.o" "gcc" "src/engine/CMakeFiles/wp_engine.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/devices/CMakeFiles/wp_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/wp_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
