# Empty compiler generated dependencies file for wp_engine.
# This may be replaced when dependencies are built.
