# Empty compiler generated dependencies file for wp_devices.
# This may be replaced when dependencies are built.
