file(REMOVE_RECURSE
  "CMakeFiles/wp_devices.dir/device.cpp.o"
  "CMakeFiles/wp_devices.dir/device.cpp.o.d"
  "CMakeFiles/wp_devices.dir/diode.cpp.o"
  "CMakeFiles/wp_devices.dir/diode.cpp.o.d"
  "CMakeFiles/wp_devices.dir/limiting.cpp.o"
  "CMakeFiles/wp_devices.dir/limiting.cpp.o.d"
  "CMakeFiles/wp_devices.dir/mosfet.cpp.o"
  "CMakeFiles/wp_devices.dir/mosfet.cpp.o.d"
  "CMakeFiles/wp_devices.dir/passive.cpp.o"
  "CMakeFiles/wp_devices.dir/passive.cpp.o.d"
  "CMakeFiles/wp_devices.dir/sources.cpp.o"
  "CMakeFiles/wp_devices.dir/sources.cpp.o.d"
  "CMakeFiles/wp_devices.dir/waveform.cpp.o"
  "CMakeFiles/wp_devices.dir/waveform.cpp.o.d"
  "libwp_devices.a"
  "libwp_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
