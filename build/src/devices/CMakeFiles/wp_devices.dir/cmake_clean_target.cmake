file(REMOVE_RECURSE
  "libwp_devices.a"
)
