file(REMOVE_RECURSE
  "CMakeFiles/sparse_test.dir/sparse/csc_test.cpp.o"
  "CMakeFiles/sparse_test.dir/sparse/csc_test.cpp.o.d"
  "CMakeFiles/sparse_test.dir/sparse/dense_test.cpp.o"
  "CMakeFiles/sparse_test.dir/sparse/dense_test.cpp.o.d"
  "CMakeFiles/sparse_test.dir/sparse/lu_test.cpp.o"
  "CMakeFiles/sparse_test.dir/sparse/lu_test.cpp.o.d"
  "CMakeFiles/sparse_test.dir/sparse/ordering_test.cpp.o"
  "CMakeFiles/sparse_test.dir/sparse/ordering_test.cpp.o.d"
  "CMakeFiles/sparse_test.dir/sparse/triplet_test.cpp.o"
  "CMakeFiles/sparse_test.dir/sparse/triplet_test.cpp.o.d"
  "CMakeFiles/sparse_test.dir/sparse/vector_ops_test.cpp.o"
  "CMakeFiles/sparse_test.dir/sparse/vector_ops_test.cpp.o.d"
  "sparse_test"
  "sparse_test.pdb"
  "sparse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
