# Empty dependencies file for wavepipe_test.
# This may be replaced when dependencies are built.
