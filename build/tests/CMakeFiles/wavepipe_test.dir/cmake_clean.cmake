file(REMOVE_RECURSE
  "CMakeFiles/wavepipe_test.dir/wavepipe/bwp_test.cpp.o"
  "CMakeFiles/wavepipe_test.dir/wavepipe/bwp_test.cpp.o.d"
  "CMakeFiles/wavepipe_test.dir/wavepipe/equivalence_test.cpp.o"
  "CMakeFiles/wavepipe_test.dir/wavepipe/equivalence_test.cpp.o.d"
  "CMakeFiles/wavepipe_test.dir/wavepipe/fwp_test.cpp.o"
  "CMakeFiles/wavepipe_test.dir/wavepipe/fwp_test.cpp.o.d"
  "CMakeFiles/wavepipe_test.dir/wavepipe/ledger_test.cpp.o"
  "CMakeFiles/wavepipe_test.dir/wavepipe/ledger_test.cpp.o.d"
  "CMakeFiles/wavepipe_test.dir/wavepipe/virtual_pipeline_test.cpp.o"
  "CMakeFiles/wavepipe_test.dir/wavepipe/virtual_pipeline_test.cpp.o.d"
  "wavepipe_test"
  "wavepipe_test.pdb"
  "wavepipe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavepipe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
