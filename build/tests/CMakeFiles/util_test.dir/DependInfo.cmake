
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/error_test.cpp" "tests/CMakeFiles/util_test.dir/util/error_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/error_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/util_test.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/strings_test.cpp" "tests/CMakeFiles/util_test.dir/util/strings_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/strings_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/util_test.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/util_test.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wavepipe/CMakeFiles/wp_wavepipe.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/wp_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/circuits/CMakeFiles/wp_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/wp_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/wp_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/wp_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/wp_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
