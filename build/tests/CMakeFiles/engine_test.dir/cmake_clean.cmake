file(REMOVE_RECURSE
  "CMakeFiles/engine_test.dir/engine/circuit_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/circuit_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/dcop_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/dcop_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/history_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/history_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/integrator_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/integrator_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/mna_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/mna_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/newton_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/newton_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/step_control_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/step_control_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/trace_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/trace_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/transient_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/transient_test.cpp.o.d"
  "engine_test"
  "engine_test.pdb"
  "engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
