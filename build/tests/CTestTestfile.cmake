# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_test[1]_include.cmake")
include("/root/repo/build/tests/devices_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/wavepipe_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
include("/root/repo/build/tests/circuits_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
